#include "runtime/comm.hpp"

#include <algorithm>
#include <ctime>
#include <sstream>
#include <thread>

#include "obs/causal.hpp"
#include "runtime/serialize.hpp"

namespace aacc::rt {

// ----------------------------------------------------------------- framing

namespace {

std::uint32_t frame_checksum(Rank src, std::int32_t tag, std::uint32_t seqno,
                             std::span<const std::byte> payload) {
  // CRC over the logical header (src, tag, seqno) then the payload: a
  // flipped header byte or a truncation is as detectable as a payload flip.
  std::uint32_t crc = crc32_init();
  const std::uint32_t fields[3] = {static_cast<std::uint32_t>(src),
                                   static_cast<std::uint32_t>(tag), seqno};
  crc = crc32_update(
      crc, std::as_bytes(std::span<const std::uint32_t>(fields, 3)));
  crc = crc32_update(crc, payload);
  return crc32_final(crc);
}

std::uint32_t stamped_frame_checksum(Rank src, std::int32_t tag,
                                     std::uint32_t seqno, std::uint64_t flow,
                                     std::span<const std::byte> payload) {
  // Wire v2.2: the flow id joins the covered header fields, so a flipped
  // flow byte is rejected like any other header corruption.
  std::uint32_t crc = crc32_init();
  const std::uint32_t fields[5] = {
      static_cast<std::uint32_t>(src), static_cast<std::uint32_t>(tag), seqno,
      static_cast<std::uint32_t>(flow & 0xffffffffu),
      static_cast<std::uint32_t>(flow >> 32)};
  crc = crc32_update(
      crc, std::as_bytes(std::span<const std::uint32_t>(fields, 5)));
  crc = crc32_update(crc, payload);
  return crc32_final(crc);
}

}  // namespace

std::vector<std::byte> encode_frame(Rank src, std::int32_t tag,
                                    std::uint32_t seqno,
                                    std::span<const std::byte> payload) {
  ByteWriter w;
  w.write(seqno);
  w.write(frame_checksum(src, tag, seqno, payload));
  w.write_bytes(payload);
  return w.take();
}

std::vector<std::byte> encode_frame(Rank src, std::int32_t tag,
                                    std::uint32_t seqno, std::uint64_t flow,
                                    std::span<const std::byte> payload) {
  ByteWriter w;
  w.write(seqno);
  w.write(stamped_frame_checksum(src, tag, seqno, flow, payload));
  w.write(flow);
  w.write_bytes(payload);
  return w.take();
}

// ---------------------------------------------------------------- Mailbox

void Mailbox::put(Message m) {
  {
    const std::lock_guard lock(mu_);
    queue_.push_back(std::move(m));
  }
  cv_.notify_all();
}

Mailbox::AdmitStatus Mailbox::admit_frame(Rank src, std::int32_t tag,
                                          std::vector<std::byte> frame,
                                          bool stamped) {
  const std::size_t header =
      stamped ? kStampedFrameHeaderBytes : kFrameHeaderBytes;
  if (frame.size() < header) return AdmitStatus::kCorrupt;
  std::uint32_t seqno = 0;
  std::uint32_t crc = 0;
  std::uint64_t flow = 0;
  std::memcpy(&seqno, frame.data(), sizeof(seqno));
  std::memcpy(&crc, frame.data() + sizeof(seqno), sizeof(crc));
  if (stamped) {
    std::memcpy(&flow, frame.data() + sizeof(seqno) + sizeof(crc),
                sizeof(flow));
  }
  const std::span<const std::byte> payload(frame.data() + header,
                                           frame.size() - header);
  const std::uint32_t want =
      stamped ? stamped_frame_checksum(src, tag, seqno, flow, payload)
              : frame_checksum(src, tag, seqno, payload);
  if (crc != want) {
    return AdmitStatus::kCorrupt;
  }

  bool delivered = false;
  {
    const std::lock_guard lock(mu_);
    Stream& st = streams_[src];
    if (seqno < st.next || st.held.count(seqno) != 0) {
      return AdmitStatus::kDuplicate;
    }
    Message m{src, tag, std::vector<std::byte>(payload.begin(), payload.end()),
              flow};
    if (seqno == st.next) {
      queue_.push_back(std::move(m));
      ++st.next;
      delivered = true;
      // Drain any buffered successors the gap was hiding.
      for (auto it = st.held.find(st.next); it != st.held.end();
           it = st.held.find(st.next)) {
        queue_.push_back(std::move(it->second));
        st.held.erase(it);
        ++st.next;
      }
    } else {
      st.held.emplace(seqno, std::move(m));
    }
  }
  if (delivered) cv_.notify_all();
  return AdmitStatus::kAccepted;
}

Message Mailbox::take(Rank src, std::int32_t tag) {
  auto res = take_for(src, tag, std::chrono::milliseconds{0});
  switch (res.status) {
    case TakeStatus::kOk:
      return std::move(res.msg);
    case TakeStatus::kClosed:
      throw MailboxClosedError("mailbox poisoned while waiting");
    default:
      throw MailboxClosedError("mailbox wait interrupted");
  }
}

Mailbox::TakeResult Mailbox::take_for(Rank src, std::int32_t tag,
                                      std::chrono::milliseconds timeout) {
  const bool timed = timeout.count() > 0;
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  std::unique_lock lock(mu_);
  for (;;) {
    for (auto it = queue_.begin(); it != queue_.end(); ++it) {
      if (it->tag == tag && (src == kAnySource || it->src == src)) {
        TakeResult res{TakeStatus::kOk, std::move(*it)};
        queue_.erase(it);
        return res;
      }
    }
    // Only after draining queued matches: shutdown and interrupt verdicts.
    // The interrupt is consumed (the mailbox has a single owner thread):
    // the caller decides whether its wait is genuinely stuck on a failed
    // peer or should resume; a later mark_failed interrupts again.
    if (closed_) return {TakeStatus::kClosed, {}};
    if (interrupted_) {
      interrupted_ = false;
      return {TakeStatus::kInterrupted, {}};
    }
    if (timed) {
      if (cv_.wait_until(lock, deadline) == std::cv_status::timeout) {
        // Re-scan once: a message may have raced the timeout.
        for (auto it = queue_.begin(); it != queue_.end(); ++it) {
          if (it->tag == tag && (src == kAnySource || it->src == src)) {
            TakeResult res{TakeStatus::kOk, std::move(*it)};
            queue_.erase(it);
            return res;
          }
        }
        return {TakeStatus::kTimeout, {}};
      }
    } else {
      cv_.wait(lock);
    }
  }
}

void Mailbox::poison() {
  {
    const std::lock_guard lock(mu_);
    closed_ = true;
  }
  cv_.notify_all();
}

void Mailbox::interrupt() {
  {
    const std::lock_guard lock(mu_);
    interrupted_ = true;
  }
  cv_.notify_all();
}

void Mailbox::reset() {
  const std::lock_guard lock(mu_);
  queue_.clear();
  streams_.clear();
  closed_ = false;
  interrupted_ = false;
}

bool Mailbox::has(Rank src, std::int32_t tag) {
  const std::lock_guard lock(mu_);
  for (const Message& m : queue_) {
    if (m.tag == tag && (src == kAnySource || m.src == src)) return true;
  }
  return false;
}

std::uint32_t Mailbox::next_expected_seq(Rank src) {
  const std::lock_guard lock(mu_);
  const auto it = streams_.find(src);
  return it == streams_.end() ? 0 : it->second.next;
}

// ------------------------------------------------------------------- Comm

namespace {

// Tag layout: user tags are non-negative; collectives use negative tags
// derived from the per-rank collective sequence number, which stays in
// lockstep across ranks because collectives are SPMD.
constexpr std::int32_t collective_tag(std::uint32_t op_seq) {
  return -1 - static_cast<std::int32_t>(op_seq & 0x3fffffffU);
}

}  // namespace

Comm::Comm(World* world, Rank rank)
    : world_(world), rank_(rank), flow_attempt_(world->run_attempt()) {
  last_cpu_mark_ = thread_cpu_seconds();
  if (world_->transport().reliable) {
    next_seq_.assign(static_cast<std::size_t>(world_->size()), 0);
  }
}

std::uint64_t Comm::next_flow_id() {
  const std::uint64_t id =
      obs::pack_flow_id(rank_, flow_attempt_, flow_step_, ++flow_seq_);
  if (trace_ != nullptr) trace_->instant("flow:send", "flow", id);
  return id;
}

Rank Comm::size() const { return world_->size(); }

double Comm::thread_cpu_seconds() const {
  timespec ts{};
  clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
  return static_cast<double>(ts.tv_sec) + static_cast<double>(ts.tv_nsec) * 1e-9;
}

void Comm::account_cpu() {
  const double now = thread_cpu_seconds();
  ledger_.cpu_seconds[phase_] += now - last_cpu_mark_;
  last_cpu_mark_ = now;
}

void Comm::set_phase(const std::string& phase) {
  account_cpu();
  phase_ = phase;
}

void Comm::log_message(OpKind kind, Rank dst, std::uint64_t bytes,
                       std::uint32_t op_id) {
  world_->append_log(MsgRecord{op_id, kind, rank_, dst, bytes});
}

void Comm::charge_send(Rank dst, std::int32_t tag, std::uint64_t wire_bytes,
                       OpKind kind, std::uint32_t op_id, bool retransmit) {
  ledger_.bytes_sent += wire_bytes;
  ++ledger_.messages_sent;
  if (retransmit) ++ledger_.retransmits;
  if (trace_ != nullptr) {
    // One instant per wire frame on this rank's track. The name encodes
    // kind (retransmits override it — they are the rare, interesting case)
    // and the arg carries the wire size.
    static constexpr const char* kKindName[] = {"msg:p2p", "msg:a2a",
                                                "msg:bcast", "msg:reduce"};
    trace_->instant(retransmit ? "msg:retransmit"
                               : kKindName[static_cast<std::size_t>(kind)],
                    "bytes", wire_bytes);
  }
  if (tag >= 0 || kind != OpKind::kPointToPoint) {
    // Collective traffic carries its op id; plain p2p with a negative tag
    // (reserved) stays unlogged, matching the unhardened path.
    log_message(kind, dst, wire_bytes, op_id);
  }
}

void Comm::put_message(Rank dst, std::int32_t tag,
                       std::vector<std::byte> payload, OpKind kind,
                       std::uint32_t op_id) {
  if (world_->transport().reliable) {
    put_reliable(dst, tag, std::move(payload), kind, op_id);
    return;
  }
  const std::uint64_t flow =
      world_->flow_stamping() ? next_flow_id() : 0;
  charge_send(dst, tag, payload.size(), kind, op_id, false);
  world_->mailbox(dst).put(Message{rank_, tag, std::move(payload), flow});
}

void Comm::put_reliable(Rank dst, std::int32_t tag,
                        std::vector<std::byte> payload, OpKind kind,
                        std::uint32_t op_id) {
  if (next_seq_.empty()) {
    // Transport was enabled after this Comm was built (install_faults
    // between runs); size lazily.
    next_seq_.assign(static_cast<std::size_t>(size()), 0);
  }
  const std::uint32_t seq = next_seq_[static_cast<std::size_t>(dst)]++;
  // One flow id per logical message: retries and injected duplicates are
  // the same causal message, so the stamp survives retry/dedup unchanged.
  const bool stamped = world_->flow_stamping();
  const std::uint64_t flow = stamped ? next_flow_id() : 0;
  const std::size_t header_bytes =
      stamped ? kStampedFrameHeaderBytes : kFrameHeaderBytes;
  FaultInjector* inj = world_->injector();
  Mailbox& box = world_->mailbox(dst);
  const TransportConfig& tc = world_->transport();

  for (std::uint32_t attempt = 0; attempt < tc.max_retries; ++attempt) {
    auto frame = stamped ? encode_frame(rank_, tag, seq, flow, payload)
                         : encode_frame(rank_, tag, seq, payload);
    const FrameFate fate =
        inj != nullptr ? inj->fate(rank_, dst, seq, attempt) : FrameFate::kDeliver;
    ledger_.frame_overhead_bytes += header_bytes;
    charge_send(dst, tag, frame.size(), kind, op_id, attempt > 0);

    if (fate == FrameFate::kDrop) {
      // The frame never reaches the receiver's NIC; back off and retry.
    } else if (fate == FrameFate::kDelay) {
      // Held "in the network": delivered after the next frame to this
      // destination (genuine reordering) or at the next recv/rank exit.
      delayed_[dst].push_back(DelayedFrame{tag, std::move(frame)});
      return;
    } else {
      if (fate == FrameFate::kCorrupt) {
        const std::size_t off =
            inj->corrupt_offset(rank_, dst, seq, attempt, frame.size());
        frame[off] ^= std::byte{0x40};
      }
      const bool duplicate = fate == FrameFate::kDuplicate;
      std::vector<std::byte> copy;
      if (duplicate) copy = frame;
      const auto verdict = box.admit_frame(rank_, tag, std::move(frame),
                                           stamped);
      if (duplicate) {
        // The duplicate is wire traffic too; the receiver's seqno dedup
        // discards it.
        charge_send(dst, tag, copy.size(), kind, op_id, true);
        ledger_.frame_overhead_bytes += header_bytes;
        (void)box.admit_frame(rank_, tag, std::move(copy), stamped);
      }
      if (verdict != Mailbox::AdmitStatus::kCorrupt) {
        flush_delayed(dst);
        return;
      }
    }
    // Exponential backoff with deterministic per-frame jitter: when a
    // faulted round drops many frames at once, every sender would otherwise
    // wake on the same schedule and retransmit in lockstep. The jitter is a
    // pure hash of (seed, src, dst, seqno, attempt) — the same scheme as
    // the frame fates — so chaos runs stay reproducible.
    const auto shift = std::min<std::uint32_t>(attempt, 6);
    const double jitter = retry_backoff_jitter(
        inj != nullptr ? inj->plan().seed : 0, rank_, dst, seq, attempt);
    std::this_thread::sleep_for(std::chrono::duration_cast<
                                std::chrono::nanoseconds>(
        tc.retry_backoff * (1U << shift) * jitter));
  }
  std::ostringstream os;
  os << "rank " << rank_ << ": frame (dst=" << dst << ", tag=" << tag
     << ", seq=" << seq << ") rejected after " << tc.max_retries
     << " attempts";
  throw CorruptFrameError(os.str());
}

void Comm::flush_delayed(Rank dst) {
  const auto it = delayed_.find(dst);
  if (it == delayed_.end()) return;
  auto frames = std::move(it->second);
  delayed_.erase(it);
  for (auto& f : frames) {
    // Held frames are intact: admission can only accept or dedup them.
    // Stamping is constant across a run and held frames never outlive
    // one, so the current format matches how they were encoded.
    (void)world_->mailbox(dst).admit_frame(rank_, f.tag, std::move(f.frame),
                                           world_->flow_stamping());
  }
}

void Comm::flush_all_delayed() {
  while (!delayed_.empty()) flush_delayed(delayed_.begin()->first);
}

void Comm::send(Rank dst, std::int32_t tag, std::vector<std::byte> payload) {
  AACC_CHECK(dst >= 0 && dst < size());
  account_cpu();
  put_message(dst, tag, std::move(payload), OpKind::kPointToPoint, 0);
}

bool Comm::escalate_peer(Rank peer, double elapsed_seconds,
                         double delta_seconds) {
  if (peer_health_.empty()) {
    peer_health_.resize(static_cast<std::size_t>(size()));
  }
  PeerHealth& ph = peer_health_[static_cast<std::size_t>(peer)];
  ph.waited_seconds += delta_seconds;
  if (world_->transport().reliable) {
    // Keep the silence record pointed at the exact awaited message while
    // the wait drags on, so even a straggler escalation names it.
    ph.has_awaited = true;
    ph.awaited_step = flow_step_;
    ph.awaited_seq = world_->mailbox(rank_).next_expected_seq(peer);
  }
  const HealthConfig& hc = world_->health();
  const auto threshold = [](std::chrono::milliseconds ms) {
    return static_cast<double>(ms.count()) * 1e-3;
  };
  if (static_cast<int>(ph.state) < static_cast<int>(PeerState::kStraggler) &&
      elapsed_seconds >= threshold(hc.straggler_after)) {
    ph.state = PeerState::kStraggler;
    ++ledger_.health_stragglers;
    if (trace_ != nullptr) {
      trace_->instant("health:straggler", "peer",
                      static_cast<std::uint64_t>(peer));
    }
  }
  if (static_cast<int>(ph.state) < static_cast<int>(PeerState::kSuspect) &&
      elapsed_seconds >= threshold(hc.suspect_after)) {
    ph.state = PeerState::kSuspect;
    ++ledger_.health_suspects;
    if (trace_ != nullptr) {
      trace_->instant("health:suspect", "peer",
                      static_cast<std::uint64_t>(peer));
    }
  }
  return static_cast<int>(ph.state) < static_cast<int>(PeerState::kDead) &&
         elapsed_seconds >= threshold(hc.dead_after);
}

void Comm::note_peer_ok(Rank peer) {
  if (peer_health_.empty()) return;
  peer_health_[static_cast<std::size_t>(peer)].state = PeerState::kOk;
}

Message Comm::recv(Rank src, std::int32_t tag) {
  account_cpu();
  flush_all_delayed();
  const auto timeout = world_->transport().recv_timeout;
  const HealthConfig& hc = world_->health();
  // Abort only a wait that is genuinely stuck: the awaited sender (or,
  // for an any-source wait, anyone) is dead. A wait on a live peer
  // resumes — its message is still coming, and letting every survivor
  // run until it actually needs a dead rank is what parks them all in
  // the same collective with identical cursors (docs/FAULTS.md).
  const auto throw_if_stuck = [&] {
    const auto failed = world_->failed_ranks();
    bool stuck = false;
    if (src != kAnySource) {
      stuck = std::find(failed.begin(), failed.end(), src) != failed.end();
    } else if (await_hint_ != nullptr) {
      // Any-source with an outstanding-set hint: the wait is stuck only if
      // one of the peers it is actually still waiting on died. A failure
      // elsewhere (a rank whose frame already arrived, or one this wait
      // never involved) must not abort a wait for a live, slow peer —
      // that tears the survivors' cursors apart mid-step.
      for (const Rank peer : *await_hint_) {
        if (std::find(failed.begin(), failed.end(), peer) != failed.end()) {
          stuck = true;
          break;
        }
      }
    } else {
      stuck = !failed.empty();
    }
    if (!stuck) return failed.empty();
    // Attribute the abort to the earliest failure, not the awaited peer: a
    // collaterally-dead src is a symptom, and the supervisor's root
    // classification reads this peer as the cascade's origin.
    std::ostringstream os;
    os << "rank " << rank_ << ": wait for (src=" << src << ", tag=" << tag
       << ") aborted; rank " << failed.front() << " failed first";
    throw PeerFailedError(failed.front(), os.str());
  };
  const bool timed = timeout.count() > 0;
  const auto wait_started = std::chrono::steady_clock::now();
  const auto deadline = wait_started + timeout;
  double attributed = 0.0;  // seconds of this await already charged to peers
  for (;;) {
    // Checked before every wait, not just on interrupt delivery: the
    // mailbox interrupt is one-shot, and this rank may have consumed it
    // inside an earlier (resumed) wait before reaching the recv that is
    // actually stuck on the failed peer. Queued matches still win — a
    // rank's sends all happen before it can be marked failed, so a
    // message already admitted must be drained, not abandoned.
    if (world_->any_failed() && !world_->mailbox(rank_).has(src, tag)) {
      (void)throw_if_stuck();
    }
    // Health supervision slices the blocking wait at straggler_after
    // granularity so awaited silence can be attributed and escalated
    // before the transport watchdog fires; with supervision off the slice
    // IS the watchdog timeout and the legacy behavior is unchanged.
    std::chrono::milliseconds slice = timeout;
    if (hc.enabled) {
      slice = timed ? std::min(slice, hc.straggler_after) : hc.straggler_after;
    }
    auto res = world_->mailbox(rank_).take_for(src, tag, slice);
    switch (res.status) {
      case Mailbox::TakeStatus::kOk: {
        if (hc.enabled) note_peer_ok(res.msg.src);
        ledger_.bytes_received += res.msg.payload.size();
        ++ledger_.messages_received;
        // The receiver thread owns this track, so the flow:recv instant
        // that binds to the sender's flow:send lands here — the single
        // delivery point every collective funnels through.
        if (trace_ != nullptr && res.msg.flow != 0) {
          trace_->instant("flow:recv", "flow", res.msg.flow);
        }
        return std::move(res.msg);
      }
      case Mailbox::TakeStatus::kInterrupted: {
        if (!throw_if_stuck()) continue;  // awaited peer is alive; re-wait
        // Interrupted outside the mark_failed protocol (direct
        // Mailbox::interrupt, e.g. from a test): treat as shutdown.
        throw MailboxClosedError("rank " + std::to_string(rank_) +
                                 ": wait interrupted with no failed rank");
      }
      case Mailbox::TakeStatus::kClosed:
        throw MailboxClosedError("rank " + std::to_string(rank_) +
                                 ": mailbox closed while receiving");
      case Mailbox::TakeStatus::kTimeout: {
        const auto now = std::chrono::steady_clock::now();
        if (hc.enabled) {
          const double elapsed =
              std::chrono::duration<double>(now - wait_started).count();
          const double delta = elapsed - attributed;
          attributed = elapsed;
          // Attribute the silence: to the named source, or — for an
          // any-source wait — to every peer the caller's await hint says
          // is still outstanding (PendingAllToAll::recv_one).
          Rank victim = kAnySource;
          if (src != kAnySource) {
            if (escalate_peer(src, elapsed, delta)) victim = src;
          } else if (await_hint_ != nullptr) {
            for (const Rank peer : *await_hint_) {
              if (escalate_peer(peer, elapsed, delta) &&
                  victim == kAnySource) {
                victim = peer;
              }
            }
          }
          if (victim != kAnySource) {
            PeerHealth& vh = peer_health_[static_cast<std::size_t>(victim)];
            vh.state = PeerState::kDead;
            // Name the exact stuck message: the RC step this rank is in
            // (SPMD lockstep, so the victim was sending for the same
            // step) and the next frame seqno expected from it. Only the
            // reliable transport has per-peer seqno streams to consult.
            const bool rel = world_->transport().reliable;
            vh.has_awaited = rel;
            vh.awaited_step = flow_step_;
            vh.awaited_seq =
                rel ? world_->mailbox(rank_).next_expected_seq(victim) : 0;
            ++ledger_.health_dead_declared;
            if (trace_ != nullptr) {
              trace_->instant("health:dead", "peer",
                              static_cast<std::uint64_t>(victim));
            }
            world_->declare_dead(victim, rank_);
            std::ostringstream os;
            os << "rank " << rank_ << ": peer " << victim
               << " declared dead by health supervision after "
               << hc.dead_after.count() << " ms of silence on (src=" << src
               << ", tag=" << tag << ")";
            if (rel) {
              os << ", stuck awaiting flow (step=" << vh.awaited_step
                 << ", seq=" << vh.awaited_seq << ") from it";
            }
            throw PeerFailedError(victim, os.str());
          }
        }
        if (!timed || now < deadline) continue;  // only a health slice expired
        std::ostringstream os;
        os << "rank " << rank_ << ": recv (src=" << src << ", tag=" << tag
           << ") timed out after " << timeout.count() << " ms";
        throw TimeoutError(os.str());
      }
    }
  }
}

std::vector<std::byte> Comm::broadcast(std::vector<std::byte> buf, Rank root,
                                       const std::vector<std::byte>* replica) {
  const Rank P = size();
  const std::int32_t tag = collective_tag(op_seq_);
  const std::uint32_t op = op_seq_++;
  const Rank vr = ((rank_ - root) % P + P) % P;  // virtual rank, root at 0

  if (vr != 0) {
    // The binomial-tree parent is vr with its highest bit cleared. Naming
    // it (instead of kAnySource) lets an interrupted wait distinguish "my
    // parent died" from "some unrelated rank died while my copy is still
    // in flight" — survivors of a crash must drain in-flight broadcasts
    // and park in the next dense collective (docs/FAULTS.md).
    Rank span = 1;
    while (span * 2 <= vr) span *= 2;
    const Rank parent = (vr - span + root) % P;
    try {
      Message m = recv(parent, tag);
      buf = std::move(m.payload);
    } catch (const PeerFailedError&) {
      // The parent died without forwarding. For replicated payloads the
      // content is reconstructible locally; substitute it and keep the
      // tree going so siblings below this rank don't starve too — the
      // whole surviving tree then finishes the broadcast and stops at the
      // *next* collective, which is what keeps survivor cursors coherent
      // for the recovery stash (docs/FAULTS.md §Shard adoption).
      if (replica == nullptr) throw;
      buf = *replica;
    }
  }
  // Forward down the binomial tree: vr sends to vr + 2^s for every s with
  // 2^s > vr (vr = 0 sends to 1, 2, 4, ...).
  for (Rank span = 1; span < P; span *= 2) {
    if (vr < span && vr + span < P) {
      const Rank dst = (vr + span + root) % P;
      put_message(dst, tag, buf, OpKind::kBroadcast, op);
    }
  }
  return buf;
}

std::vector<std::vector<std::byte>> Comm::all_to_all(
    std::vector<std::vector<std::byte>> out) {
  // Window 1 = the classic blocking shift schedule (send round s, then
  // block on round s's recv), reproduced send for send and recv for recv
  // by the windowed engine below.
  return all_to_all_start(std::move(out), 1).wait_all();
}

PendingAllToAll Comm::all_to_all_begin(Rank window_k) {
  const std::int32_t tag = collective_tag(op_seq_);
  const std::uint32_t op = op_seq_++;
  return PendingAllToAll(this, window_k, tag, op);
}

PendingAllToAll Comm::all_to_all_start(std::vector<std::vector<std::byte>> out,
                                       Rank window_k) {
  const Rank P = size();
  AACC_CHECK(static_cast<Rank>(out.size()) == P);
  PendingAllToAll pending = all_to_all_begin(window_k);
  // Own slot first, then shift order — the order submit() issues sends in.
  pending.submit(rank_, std::move(out[static_cast<std::size_t>(rank_)]));
  for (Rank s = 1; s < P; ++s) {
    const Rank dst = (rank_ + s) % P;
    pending.submit(dst, std::move(out[static_cast<std::size_t>(dst)]));
  }
  return pending;
}

// ------------------------------------------------------------ PendingAllToAll

PendingAllToAll::PendingAllToAll(Comm* comm, Rank window, std::int32_t tag,
                                 std::uint32_t op)
    : comm_(comm),
      window_(std::clamp<Rank>(window, 1,
                               std::max<Rank>(1, comm->size() - 1))),
      tag_(tag),
      op_(op),
      P_(comm->size()),
      me_(comm->rank()),
      out_(static_cast<std::size_t>(P_)),
      in_(static_cast<std::size_t>(P_)),
      submitted_(static_cast<std::size_t>(P_), false),
      arrived_(static_cast<std::size_t>(P_), false) {}

void PendingAllToAll::pump() {
  while (next_send_s_ < P_) {
    const Rank dst = (me_ + next_send_s_) % P_;
    if (!submitted_[static_cast<std::size_t>(dst)]) return;  // not assembled yet
    if (sends_issued_ - recvs_taken_ >= window_) return;     // window full
    comm_->put_message(dst, tag_,
                       std::move(out_[static_cast<std::size_t>(dst)]),
                       OpKind::kAllToAll, op_);
    ++sends_issued_;
    ++next_send_s_;
    max_inflight_ = std::max<std::uint64_t>(
        max_inflight_, static_cast<std::uint64_t>(sends_issued_ - recvs_taken_));
  }
}

void PendingAllToAll::recv_one() {
  // At window 1 each recv names its shift source: round r's arrival comes
  // from rank - r. This keeps the legacy blocking schedule's matching (and
  // its failure attribution: a wait aborts only when *that* peer died,
  // not when any rank did). Deeper windows take whatever lands first.
  const Rank round = recvs_taken_ + 1;
  const Rank src =
      window_ == 1 ? ((me_ - round) % P_ + P_) % P_ : kAnySource;
  // An any-source recv advertises which peers are still outstanding. The
  // hint serves two consumers: health supervision attributes the silence
  // per peer and can declare a wedged one dead (docs/FAULTS.md §Health
  // supervision), and the failure guard in Comm::recv aborts the wait
  // only when an *awaited* peer died — a dead rank whose frame already
  // arrived must not tear a wait for a live, merely slow peer. The hint
  // is cleared even if the recv throws.
  std::vector<Rank> outstanding;
  if (src == kAnySource) {
    for (Rank r = 0; r < P_; ++r) {
      if (r != me_ && !arrived_[static_cast<std::size_t>(r)]) {
        outstanding.push_back(r);
      }
    }
    comm_->await_hint_ = &outstanding;
  }
  const auto t0 = std::chrono::steady_clock::now();
  Message m = [&]() -> Message {
    try {
      return comm_->recv(src, tag_);
    } catch (...) {
      comm_->await_hint_ = nullptr;
      throw;
    }
  }();
  comm_->await_hint_ = nullptr;
  const double waited =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  wait_seconds_ += waited;
  // Live blocked-on attribution: the peer whose arrival ended the longest
  // single blocked interval is who this exchange was waiting for.
  if (waited > max_blocked_seconds_) {
    max_blocked_seconds_ = waited;
    max_blocked_src_ = m.src;
  }
  arrived_[static_cast<std::size_t>(m.src)] = true;
  in_[static_cast<std::size_t>(m.src)] = std::move(m.payload);
  ready_.push_back(m.src);
  ++recvs_taken_;
}

void PendingAllToAll::submit(Rank dst, std::vector<std::byte> payload) {
  AACC_CHECK(dst >= 0 && dst < P_);
  AACC_CHECK(!submitted_[static_cast<std::size_t>(dst)]);
  submitted_[static_cast<std::size_t>(dst)] = true;
  ++submitted_count_;
  if (dst == me_) {
    in_[static_cast<std::size_t>(me_)] = std::move(payload);
    pump();
    return;
  }
  out_[static_cast<std::size_t>(dst)] = std::move(payload);
  for (;;) {
    pump();
    if (next_send_s_ >= P_) return;  // everything issued
    const Rank next = (me_ + next_send_s_) % P_;
    if (!submitted_[static_cast<std::size_t>(next)]) return;  // waiting on caller
    recv_one();  // window full: drain (and buffer) one arrival to open it
  }
}

std::optional<PendingAllToAll::Arrival> PendingAllToAll::try_recv_any() {
  pump();
  if (ready_.empty()) {
    if (delivered_ >= P_ - 1) {
      AACC_CHECK_MSG(submitted_count_ == P_,
                     "all-to-all drained before every destination was "
                     "submitted; peers would deadlock");
      return std::nullopt;
    }
    recv_one();
    pump();  // the consumed slot may unblock a pending send
  }
  const Rank src = ready_.front();
  ready_.pop_front();
  ++delivered_;
  return Arrival{src, std::move(in_[static_cast<std::size_t>(src)])};
}

std::vector<std::vector<std::byte>> PendingAllToAll::wait_all() {
  AACC_CHECK_MSG(submitted_count_ == P_,
                 "all-to-all waited before every destination was submitted");
  while (recvs_taken_ < P_ - 1) {
    pump();
    recv_one();
  }
  pump();  // final recv opened the window for any still-unsent round
  AACC_CHECK(next_send_s_ >= P_);
  ready_.clear();
  delivered_ = P_ - 1;
  return std::move(in_);
}

std::vector<std::vector<std::byte>> Comm::gather(std::vector<std::byte> buf,
                                                 Rank root) {
  const Rank P = size();
  const std::int32_t tag = collective_tag(op_seq_);
  const std::uint32_t op = op_seq_++;
  std::vector<std::vector<std::byte>> out;
  if (rank_ == root) {
    out.resize(static_cast<std::size_t>(P));
    out[static_cast<std::size_t>(root)] = std::move(buf);
    for (Rank q = 0; q < P; ++q) {
      if (q == root) continue;
      Message m = recv(q, tag);
      out[static_cast<std::size_t>(q)] = std::move(m.payload);
    }
  } else {
    put_message(root, tag, std::move(buf), OpKind::kReduce, op);
  }
  return out;
}

std::vector<std::byte> Comm::scatter(std::vector<std::vector<std::byte>> bufs,
                                     Rank root) {
  const Rank P = size();
  const std::int32_t tag = collective_tag(op_seq_);
  const std::uint32_t op = op_seq_++;
  if (rank_ == root) {
    AACC_CHECK(static_cast<Rank>(bufs.size()) == P);
    for (Rank q = 0; q < P; ++q) {
      if (q == root) continue;
      put_message(q, tag, std::move(bufs[static_cast<std::size_t>(q)]),
                  OpKind::kBroadcast, op);
    }
    return std::move(bufs[static_cast<std::size_t>(root)]);
  }
  Message m = recv(root, tag);
  return std::move(m.payload);
}

bool Comm::probe(Rank src, std::int32_t tag) {
  return world_->mailbox(rank_).has(src, tag);
}

std::uint64_t Comm::all_reduce(
    std::uint64_t value,
    const std::function<std::uint64_t(std::uint64_t, std::uint64_t)>& op) {
  const Rank P = size();
  const std::int32_t tag = collective_tag(op_seq_);
  const std::uint32_t opid = op_seq_++;

  // Binomial-tree reduce to rank 0.
  for (Rank span = 1; span < P; span *= 2) {
    if ((rank_ & span) != 0) {
      ByteWriter w;
      w.write(value);
      put_message(rank_ - span, tag, w.take(), OpKind::kReduce, opid);
      break;
    }
    if (rank_ + span < P) {
      Message m = recv(rank_ + span, tag);
      ByteReader r(m.payload);
      value = op(value, r.read<std::uint64_t>());
    }
  }
  // Broadcast the result back down.
  ByteWriter w;
  w.write(value);
  auto buf = broadcast(w.take(), 0);
  ByteReader r(buf);
  return r.read<std::uint64_t>();
}

std::uint64_t Comm::all_reduce_sum(std::uint64_t value) {
  return all_reduce(value, [](std::uint64_t a, std::uint64_t b) { return a + b; });
}

std::uint64_t Comm::all_reduce_max(std::uint64_t value) {
  return all_reduce(value,
                    [](std::uint64_t a, std::uint64_t b) { return a > b ? a : b; });
}

bool Comm::all_reduce_or(bool value) {
  return all_reduce_sum(value ? 1 : 0) != 0;
}

void Comm::barrier() { (void)all_reduce_sum(0); }

// ------------------------------------------------------------------ World

World::World(Rank size, LogGPParams params, TransportConfig transport)
    : size_(size), params_(params), transport_(transport) {
  AACC_CHECK(size >= 1);
  mailboxes_.reserve(static_cast<std::size_t>(size));
  for (Rank r = 0; r < size; ++r) {
    mailboxes_.push_back(std::make_unique<Mailbox>());
  }
  ledgers_.resize(static_cast<std::size_t>(size));
}

void World::install_faults(FaultInjector* injector) {
  injector_ = injector;
  if (injector_ != nullptr) transport_.reliable = true;
}

void World::mark_failed(Rank r) {
  {
    // Insertion order is failure order: front() is the first rank to die,
    // so interrupted waits attribute their PeerFailedError to the root
    // cause rather than a collateral casualty. Idempotent — a rank can be
    // declared dead by health supervision and then fail on its own.
    const std::lock_guard lock(failed_mu_);
    if (std::find(failed_.begin(), failed_.end(), r) != failed_.end()) return;
    failed_.push_back(r);
  }
  any_failed_.store(true, std::memory_order_release);
  for (auto& box : mailboxes_) box->interrupt();
}

void World::declare_dead(Rank r, Rank by) {
  {
    const std::lock_guard lock(failed_mu_);
    // One declaration per rank per run, and none for a rank that already
    // failed on its own (its real error is the better root cause).
    if (std::find(failed_.begin(), failed_.end(), r) != failed_.end()) return;
    if (std::find(declared_dead_.begin(), declared_dead_.end(), r) !=
        declared_dead_.end()) {
      return;
    }
    declared_dead_.push_back(r);
  }
  (void)by;  // attribution lives in the declarer's ledger/trace
  mark_failed(r);
}

std::vector<Rank> World::failed_ranks() const {
  const std::lock_guard lock(failed_mu_);
  return failed_;
}

std::vector<Rank> World::declared_dead() const {
  const std::lock_guard lock(failed_mu_);
  return declared_dead_;
}

void World::run(const std::function<void(Comm&)>& fn) {
  const RunReport report = run_contained(fn);
  if (report.ok()) return;
  // Prefer a root cause: collateral PeerFailedError just says "someone else
  // died first".
  for (const Rank r : report.failed) {
    const auto& e = report.errors[static_cast<std::size_t>(r)];
    try {
      std::rethrow_exception(e);
    } catch (const PeerFailedError&) {
      continue;
    } catch (...) {
      std::rethrow_exception(e);
    }
  }
  std::rethrow_exception(report.errors[static_cast<std::size_t>(report.failed.front())]);
}

World::RunReport World::run_contained(const std::function<void(Comm&)>& fn) {
  // Fresh failure state and transport streams: Comm seqnos restart at zero
  // each run, and a failed previous run may have left undelivered frames.
  // The attempt counter separates this run's flow ids from every earlier
  // attempt's, so a rollback replay can never match pre-rollback sends.
  ++run_attempt_;
  any_failed_.store(false, std::memory_order_release);
  {
    const std::lock_guard lock(failed_mu_);
    failed_.clear();
    declared_dead_.clear();
  }
  for (auto& box : mailboxes_) box->reset();

  std::vector<std::thread> threads;
  RunReport report;
  report.errors.resize(static_cast<std::size_t>(size_));
  std::vector<std::unique_ptr<Comm>> comms(static_cast<std::size_t>(size_));
  for (Rank r = 0; r < size_; ++r) {
    comms[static_cast<std::size_t>(r)] = std::make_unique<Comm>(this, r);
    if (tracer_ != nullptr) {
      comms[static_cast<std::size_t>(r)]->trace_ = &tracer_->track(r);
    }
  }
  threads.reserve(static_cast<std::size_t>(size_));
  for (Rank r = 0; r < size_; ++r) {
    threads.emplace_back([&, r] {
      Comm& comm = *comms[static_cast<std::size_t>(r)];
      // The Comm was constructed on the driver thread; CPU accounting must
      // baseline against *this* thread's clock.
      comm.last_cpu_mark_ = comm.thread_cpu_seconds();
      try {
        fn(comm);
        // Frames still held by delay injection leave the NIC now; a crashed
        // rank (exception path) loses them, like real in-flight traffic.
        comm.flush_all_delayed();
        comm.account_cpu();
      } catch (...) {
        report.errors[static_cast<std::size_t>(r)] = std::current_exception();
        // Wake every peer blocked on this rank: they fail fast with
        // PeerFailedError instead of deadlocking (or timing out).
        mark_failed(r);
      }
    });
  }
  for (auto& t : threads) t.join();

  // Merge ledgers before error propagation so partial accounting survives.
  for (Rank r = 0; r < size_; ++r) {
    const RankLedger& src = comms[static_cast<std::size_t>(r)]->ledger();
    RankLedger& dst = ledgers_[static_cast<std::size_t>(r)];
    dst.bytes_sent += src.bytes_sent;
    dst.bytes_received += src.bytes_received;
    dst.messages_sent += src.messages_sent;
    dst.messages_received += src.messages_received;
    dst.frame_overhead_bytes += src.frame_overhead_bytes;
    dst.retransmits += src.retransmits;
    dst.health_stragglers += src.health_stragglers;
    dst.health_suspects += src.health_suspects;
    dst.health_dead_declared += src.health_dead_declared;
    for (const auto& [phase, secs] : src.cpu_seconds) {
      dst.cpu_seconds[phase] += secs;
    }
  }
  for (Rank r = 0; r < size_; ++r) {
    if (report.errors[static_cast<std::size_t>(r)]) report.failed.push_back(r);
  }
  return report;
}

void World::append_log(const MsgRecord& m) {
  const std::lock_guard lock(log_mu_);
  log_.push_back(m);
}

double World::modeled_network_seconds(SchedulePolicy policy) const {
  return rt::modeled_network_seconds(log_, params_, policy, size_);
}

double World::modeled_exchange_seconds(std::uint32_t window) const {
  return rt::modeled_exchange_makespan(log_, params_, size_, window);
}

double World::total_cpu_seconds() const {
  double t = 0.0;
  for (const auto& l : ledgers_) t += l.total_cpu_seconds();
  return t;
}

double World::max_rank_cpu_seconds() const {
  double t = 0.0;
  for (const auto& l : ledgers_) t = std::max(t, l.total_cpu_seconds());
  return t;
}

std::uint64_t World::total_bytes() const {
  std::uint64_t b = 0;
  for (const auto& l : ledgers_) b += l.bytes_sent;
  return b;
}

std::uint64_t World::total_messages() const {
  std::uint64_t m = 0;
  for (const auto& l : ledgers_) m += l.messages_sent;
  return m;
}

void World::reset_accounting() {
  for (auto& l : ledgers_) l = RankLedger{};
  const std::lock_guard lock(log_mu_);
  log_.clear();
}

}  // namespace aacc::rt
