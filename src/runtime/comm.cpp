#include "runtime/comm.hpp"

#include <ctime>
#include <thread>

#include "runtime/serialize.hpp"

namespace aacc::rt {

// ---------------------------------------------------------------- Mailbox

void Mailbox::put(Message m) {
  {
    const std::lock_guard lock(mu_);
    queue_.push_back(std::move(m));
  }
  cv_.notify_all();
}

Message Mailbox::take(Rank src, std::int32_t tag) {
  std::unique_lock lock(mu_);
  for (;;) {
    for (auto it = queue_.begin(); it != queue_.end(); ++it) {
      if (it->tag == tag && (src == kAnySource || it->src == src)) {
        Message m = std::move(*it);
        queue_.erase(it);
        return m;
      }
    }
    cv_.wait(lock);
  }
}

bool Mailbox::has(Rank src, std::int32_t tag) {
  const std::lock_guard lock(mu_);
  for (const Message& m : queue_) {
    if (m.tag == tag && (src == kAnySource || m.src == src)) return true;
  }
  return false;
}

// ------------------------------------------------------------------- Comm

namespace {

// Tag layout: user tags are non-negative; collectives use negative tags
// derived from the per-rank collective sequence number, which stays in
// lockstep across ranks because collectives are SPMD.
constexpr std::int32_t collective_tag(std::uint32_t op_seq) {
  return -1 - static_cast<std::int32_t>(op_seq & 0x3fffffffU);
}

}  // namespace

Comm::Comm(World* world, Rank rank) : world_(world), rank_(rank) {
  last_cpu_mark_ = thread_cpu_seconds();
}

Rank Comm::size() const { return world_->size(); }

double Comm::thread_cpu_seconds() const {
  timespec ts{};
  clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
  return static_cast<double>(ts.tv_sec) + static_cast<double>(ts.tv_nsec) * 1e-9;
}

void Comm::account_cpu() {
  const double now = thread_cpu_seconds();
  ledger_.cpu_seconds[phase_] += now - last_cpu_mark_;
  last_cpu_mark_ = now;
}

void Comm::set_phase(const std::string& phase) {
  account_cpu();
  phase_ = phase;
}

void Comm::log_message(OpKind kind, Rank dst, std::uint64_t bytes,
                       std::uint32_t op_id) {
  world_->append_log(MsgRecord{op_id, kind, rank_, dst, bytes});
}

void Comm::send(Rank dst, std::int32_t tag, std::vector<std::byte> payload) {
  AACC_CHECK(dst >= 0 && dst < size());
  account_cpu();
  ledger_.bytes_sent += payload.size();
  ++ledger_.messages_sent;
  if (tag >= 0) {
    // Collective traffic is logged by the collective itself with its op id.
    log_message(OpKind::kPointToPoint, dst, payload.size(), 0);
  }
  world_->mailbox(dst).put(Message{rank_, tag, std::move(payload)});
}

Message Comm::recv(Rank src, std::int32_t tag) {
  account_cpu();
  Message m = world_->mailbox(rank_).take(src, tag);
  ledger_.bytes_received += m.payload.size();
  ++ledger_.messages_received;
  return m;
}

std::vector<std::byte> Comm::broadcast(std::vector<std::byte> buf, Rank root) {
  const Rank P = size();
  const std::int32_t tag = collective_tag(op_seq_);
  const std::uint32_t op = op_seq_++;
  const Rank vr = ((rank_ - root) % P + P) % P;  // virtual rank, root at 0

  if (vr != 0) {
    Message m = recv(kAnySource, tag);
    buf = std::move(m.payload);
  }
  // Forward down the binomial tree: vr sends to vr + 2^s for every s with
  // 2^s > vr (vr = 0 sends to 1, 2, 4, ...).
  for (Rank span = 1; span < P; span *= 2) {
    if (vr < span && vr + span < P) {
      const Rank dst = (vr + span + root) % P;
      ledger_.bytes_sent += buf.size();
      ++ledger_.messages_sent;
      log_message(OpKind::kBroadcast, dst, buf.size(), op);
      world_->mailbox(dst).put(Message{rank_, tag, buf});
    }
  }
  return buf;
}

std::vector<std::vector<std::byte>> Comm::all_to_all(
    std::vector<std::vector<std::byte>> out) {
  const Rank P = size();
  AACC_CHECK(static_cast<Rank>(out.size()) == P);
  const std::int32_t tag = collective_tag(op_seq_);
  const std::uint32_t op = op_seq_++;

  std::vector<std::vector<std::byte>> in(static_cast<std::size_t>(P));
  in[static_cast<std::size_t>(rank_)] = std::move(out[static_cast<std::size_t>(rank_)]);

  // Shift schedule: round s exchanges with rank +s / -s. Sends are
  // non-blocking mailbox puts, so the pairwise recv cannot deadlock.
  for (Rank s = 1; s < P; ++s) {
    const Rank dst = (rank_ + s) % P;
    const Rank src = ((rank_ - s) % P + P) % P;
    auto& payload = out[static_cast<std::size_t>(dst)];
    ledger_.bytes_sent += payload.size();
    ++ledger_.messages_sent;
    log_message(OpKind::kAllToAll, dst, payload.size(), op);
    world_->mailbox(dst).put(Message{rank_, tag, std::move(payload)});
    Message m = recv(src, tag);
    in[static_cast<std::size_t>(src)] = std::move(m.payload);
  }
  return in;
}

std::vector<std::vector<std::byte>> Comm::gather(std::vector<std::byte> buf,
                                                 Rank root) {
  const Rank P = size();
  const std::int32_t tag = collective_tag(op_seq_);
  const std::uint32_t op = op_seq_++;
  std::vector<std::vector<std::byte>> out;
  if (rank_ == root) {
    out.resize(static_cast<std::size_t>(P));
    out[static_cast<std::size_t>(root)] = std::move(buf);
    for (Rank q = 0; q < P; ++q) {
      if (q == root) continue;
      Message m = recv(q, tag);
      out[static_cast<std::size_t>(q)] = std::move(m.payload);
    }
  } else {
    ledger_.bytes_sent += buf.size();
    ++ledger_.messages_sent;
    log_message(OpKind::kReduce, root, buf.size(), op);
    world_->mailbox(root).put(Message{rank_, tag, std::move(buf)});
  }
  return out;
}

std::vector<std::byte> Comm::scatter(std::vector<std::vector<std::byte>> bufs,
                                     Rank root) {
  const Rank P = size();
  const std::int32_t tag = collective_tag(op_seq_);
  const std::uint32_t op = op_seq_++;
  if (rank_ == root) {
    AACC_CHECK(static_cast<Rank>(bufs.size()) == P);
    for (Rank q = 0; q < P; ++q) {
      if (q == root) continue;
      auto& payload = bufs[static_cast<std::size_t>(q)];
      ledger_.bytes_sent += payload.size();
      ++ledger_.messages_sent;
      log_message(OpKind::kBroadcast, q, payload.size(), op);
      world_->mailbox(q).put(Message{rank_, tag, std::move(payload)});
    }
    return std::move(bufs[static_cast<std::size_t>(root)]);
  }
  Message m = recv(root, tag);
  return std::move(m.payload);
}

bool Comm::probe(Rank src, std::int32_t tag) {
  return world_->mailbox(rank_).has(src, tag);
}

std::uint64_t Comm::all_reduce(
    std::uint64_t value,
    const std::function<std::uint64_t(std::uint64_t, std::uint64_t)>& op) {
  const Rank P = size();
  const std::int32_t tag = collective_tag(op_seq_);
  const std::uint32_t opid = op_seq_++;

  // Binomial-tree reduce to rank 0.
  for (Rank span = 1; span < P; span *= 2) {
    if ((rank_ & span) != 0) {
      ByteWriter w;
      w.write(value);
      auto payload = w.take();
      const Rank dst = rank_ - span;
      ledger_.bytes_sent += payload.size();
      ++ledger_.messages_sent;
      log_message(OpKind::kReduce, dst, payload.size(), opid);
      world_->mailbox(dst).put(Message{rank_, tag, std::move(payload)});
      break;
    }
    if (rank_ + span < P) {
      Message m = recv(rank_ + span, tag);
      ByteReader r(m.payload);
      value = op(value, r.read<std::uint64_t>());
    }
  }
  // Broadcast the result back down.
  ByteWriter w;
  w.write(value);
  auto buf = broadcast(w.take(), 0);
  ByteReader r(buf);
  return r.read<std::uint64_t>();
}

std::uint64_t Comm::all_reduce_sum(std::uint64_t value) {
  return all_reduce(value, [](std::uint64_t a, std::uint64_t b) { return a + b; });
}

std::uint64_t Comm::all_reduce_max(std::uint64_t value) {
  return all_reduce(value,
                    [](std::uint64_t a, std::uint64_t b) { return a > b ? a : b; });
}

bool Comm::all_reduce_or(bool value) {
  return all_reduce_sum(value ? 1 : 0) != 0;
}

void Comm::barrier() { (void)all_reduce_sum(0); }

// ------------------------------------------------------------------ World

World::World(Rank size, LogGPParams params) : size_(size), params_(params) {
  AACC_CHECK(size >= 1);
  mailboxes_.reserve(static_cast<std::size_t>(size));
  for (Rank r = 0; r < size; ++r) {
    mailboxes_.push_back(std::make_unique<Mailbox>());
  }
  ledgers_.resize(static_cast<std::size_t>(size));
}

void World::run(const std::function<void(Comm&)>& fn) {
  std::vector<std::thread> threads;
  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(size_));
  std::vector<std::unique_ptr<Comm>> comms(static_cast<std::size_t>(size_));
  for (Rank r = 0; r < size_; ++r) {
    comms[static_cast<std::size_t>(r)] = std::make_unique<Comm>(this, r);
  }
  threads.reserve(static_cast<std::size_t>(size_));
  for (Rank r = 0; r < size_; ++r) {
    threads.emplace_back([&, r] {
      Comm& comm = *comms[static_cast<std::size_t>(r)];
      // The Comm was constructed on the driver thread; CPU accounting must
      // baseline against *this* thread's clock.
      comm.last_cpu_mark_ = comm.thread_cpu_seconds();
      try {
        fn(comm);
        comm.account_cpu();
      } catch (...) {
        errors[static_cast<std::size_t>(r)] = std::current_exception();
      }
    });
  }
  for (auto& t : threads) t.join();

  // Merge ledgers before error propagation so partial accounting survives.
  for (Rank r = 0; r < size_; ++r) {
    const RankLedger& src = comms[static_cast<std::size_t>(r)]->ledger();
    RankLedger& dst = ledgers_[static_cast<std::size_t>(r)];
    dst.bytes_sent += src.bytes_sent;
    dst.bytes_received += src.bytes_received;
    dst.messages_sent += src.messages_sent;
    dst.messages_received += src.messages_received;
    for (const auto& [phase, secs] : src.cpu_seconds) {
      dst.cpu_seconds[phase] += secs;
    }
  }
  for (auto& e : errors) {
    if (e) std::rethrow_exception(e);
  }
}

void World::append_log(const MsgRecord& m) {
  const std::lock_guard lock(log_mu_);
  log_.push_back(m);
}

double World::modeled_network_seconds(SchedulePolicy policy) const {
  return rt::modeled_network_seconds(log_, params_, policy, size_);
}

double World::total_cpu_seconds() const {
  double t = 0.0;
  for (const auto& l : ledgers_) t += l.total_cpu_seconds();
  return t;
}

double World::max_rank_cpu_seconds() const {
  double t = 0.0;
  for (const auto& l : ledgers_) t = std::max(t, l.total_cpu_seconds());
  return t;
}

std::uint64_t World::total_bytes() const {
  std::uint64_t b = 0;
  for (const auto& l : ledgers_) b += l.bytes_sent;
  return b;
}

std::uint64_t World::total_messages() const {
  std::uint64_t m = 0;
  for (const auto& l : ledgers_) m += l.messages_sent;
  return m;
}

void World::reset_accounting() {
  for (auto& l : ledgers_) l = RankLedger{};
  const std::lock_guard lock(log_mu_);
  log_.clear();
}

}  // namespace aacc::rt
