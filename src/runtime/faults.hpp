// Deterministic fault injection and the runtime fault model.
//
// A FaultPlan describes, from a single RNG seed, which transport frames are
// dropped, duplicated, delayed, or bit-corrupted, and which rank crashes at
// which RC step. The FaultInjector evaluates the plan as a *pure hash* of
// (seed, src, dst, seqno, attempt): the fate of every frame is fixed before
// the run starts and is independent of thread interleaving, so a chaos run
// is reproducible even though rank threads race.
//
// Frames beyond `fault_attempt_limit` retransmissions are always delivered
// cleanly — the adversary has bounded power per frame, which is what makes
// the sender's bounded retry loop sufficient for eventual delivery.
//
// See docs/FAULTS.md for the full fault model and recovery state machine.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace aacc::rt {

// ------------------------------------------------------------ typed errors

/// Base of every transport-level failure the hardened runtime can raise.
class TransportError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// A timed recv expired without a matching message.
class TimeoutError : public TransportError {
 public:
  using TransportError::TransportError;
};

/// A frame failed its CRC check and the retry budget is exhausted.
class CorruptFrameError : public TransportError {
 public:
  using TransportError::TransportError;
};

/// A blocking wait was interrupted because a peer rank was marked failed.
class PeerFailedError : public TransportError {
 public:
  PeerFailedError(Rank peer, const std::string& what)
      : TransportError(what), peer_(peer) {}
  [[nodiscard]] Rank peer() const { return peer_; }

 private:
  Rank peer_;
};

/// The mailbox was shut down (poison token) while a wait was pending.
class MailboxClosedError : public TransportError {
 public:
  using TransportError::TransportError;
};

/// Thrown by the injector's crash hook inside rank code: simulates the
/// process dying at a chosen RC step. Deliberately NOT a TransportError —
/// the supervisor classifies it as a root failure, not collateral.
class InjectedCrash : public std::runtime_error {
 public:
  InjectedCrash(Rank rank, std::size_t step)
      : std::runtime_error("injected crash: rank " + std::to_string(rank) +
                           " at RC step " + std::to_string(step)),
        rank_(rank), step_(step) {}
  [[nodiscard]] Rank rank() const { return rank_; }
  [[nodiscard]] std::size_t step() const { return step_; }

 private:
  Rank rank_;
  std::size_t step_;
};

// --------------------------------------------------------------- transport

/// Reliable-transport knobs (Comm/Mailbox). Default OFF: the fault-free
/// fast path is byte-identical to the unhardened runtime (zero cost when
/// disabled). Installing a FaultInjector on a World forces `reliable` on.
struct TransportConfig {
  /// Frame every payload as [seqno u32][crc32 u32][payload]: CRC validation,
  /// per-(src,dst) sequence numbers with receive-side dedup and in-order
  /// delivery, and sender retry with exponential backoff.
  bool reliable = false;
  /// Attempts per frame before the sender raises CorruptFrameError.
  std::uint32_t max_retries = 16;
  /// Every blocking recv fails with TimeoutError after this long; a wedged
  /// rank can never hang the binary. 0 disables (tests only).
  std::chrono::milliseconds recv_timeout{120000};
  /// Base retransmit backoff; doubles per attempt (capped at 64x), then
  /// scaled by a deterministic per-frame jitter factor in [0.5, 1.5) —
  /// splitmix64 of (seed, src, dst, seqno, attempt), the same scheme as
  /// frame fates — so the senders of a dropped all-to-all round do not
  /// retransmit in lockstep (see retry_backoff_jitter).
  std::chrono::microseconds retry_backoff{20};
};

/// Deterministic jitter factor in [0.5, 1.5) for retransmit attempt
/// `attempt` of frame (src, dst, seqno). Pure function of its arguments —
/// two calls with the same tuple always agree, so chaos runs stay
/// reproducible while concurrent senders spread out their retry storms.
[[nodiscard]] double retry_backoff_jitter(std::uint64_t seed, Rank src,
                                          Rank dst, std::uint32_t seqno,
                                          std::uint32_t attempt);

// ---------------------------------------------------------- health model

/// Peer-health deadlines for the supervision layer (docs/FAULTS.md
/// §Health supervision). While a rank blocks waiting for a peer's frame
/// (directly or through `PendingAllToAll::try_recv_any`), the elapsed wait
/// is attributed to the awaited peer(s) and escalates their observed state
/// straggler -> suspect -> dead. Crossing `dead_after` *declares* the peer
/// dead: the waiter marks it failed and raises PeerFailedError immediately
/// instead of burning the full recv_timeout on a TimeoutError. Disabled by
/// default: the fault-free path then takes a single branch per wait.
struct HealthConfig {
  bool enabled = false;
  /// A peer silent this long while awaited is a straggler (telemetry only).
  std::chrono::milliseconds straggler_after{100};
  /// A peer silent this long is a suspect (trace instant + counter).
  std::chrono::milliseconds suspect_after{500};
  /// A peer silent this long is declared dead (PeerFailedError raised and
  /// the rank is marked failed world-wide). Must stay below the transport
  /// recv_timeout or the watchdog wins the race and the declaration never
  /// happens.
  std::chrono::milliseconds dead_after{2000};
};

/// Escalation ladder of a peer as seen by one observer rank.
enum class PeerState : std::uint8_t { kOk, kStraggler, kSuspect, kDead };

/// Per-peer health ledger kept by each Comm endpoint: cumulative awaited
/// silence and the highest escalation state reached. When the silence was
/// observed under the reliable transport, the record also names the exact
/// awaited message — the flow step the observer was in and the next frame
/// seqno it expected from the peer — so a PeerFailedError can say which
/// message is stuck, not just which peer (docs/OBSERVABILITY.md §Causal
/// flows).
struct PeerHealth {
  double waited_seconds = 0.0;
  PeerState state = PeerState::kOk;
  bool has_awaited = false;          ///< awaited_* below are meaningful
  std::uint32_t awaited_step = 0;    ///< observer's RC step at escalation
  std::uint32_t awaited_seq = 0;     ///< next frame seqno expected from peer
};

// ------------------------------------------------------------- fault plan

enum class FrameFate : std::uint8_t {
  kDeliver,
  kDrop,       ///< frame vanishes on the wire
  kDuplicate,  ///< frame arrives twice
  kDelay,      ///< frame is held and delivered late (reordered)
  kCorrupt,    ///< one byte of the frame is flipped in flight
};

/// Where inside an RC step a scheduled death fires.
enum class CrashPhase : std::uint8_t {
  /// At the top of the step, before the first collective — every survivor
  /// then parks in that step's exchange with an identical cursor.
  kStepStart,
  /// Between `submit` and `wait_all` of the exchange's PendingAllToAll:
  /// some of the dying rank's payloads are already delivered, some of its
  /// peers' arrivals already applied. Exercises the pipelined/async
  /// windows' partial-delivery recovery paths.
  kMidExchange,
};

/// One scheduled rank death.
struct CrashPoint {
  Rank rank = 0;
  std::size_t at_step = 0;  ///< RC step at which the rank dies
  CrashPhase phase = CrashPhase::kStepStart;
};

struct FaultPlan {
  std::uint64_t seed = 0;
  // Per-frame probabilities, evaluated in this order; must sum to <= 1.
  double drop = 0.0;
  double duplicate = 0.0;
  double delay = 0.0;
  double corrupt = 0.0;
  /// Attempts 0..limit-1 of a frame may be faulted; later retransmits are
  /// always clean (bounded adversary — guarantees eventual delivery).
  std::uint32_t fault_attempt_limit = 3;
  std::vector<CrashPoint> crashes;

  [[nodiscard]] bool any_message_faults() const {
    return drop > 0.0 || duplicate > 0.0 || delay > 0.0 || corrupt > 0.0;
  }
  [[nodiscard]] bool any() const {
    return any_message_faults() || !crashes.empty();
  }
};

/// Evaluates a FaultPlan. Thread-safe: fate() is a pure function of its
/// arguments plus the seed; the counters are atomics; crash points fire
/// once (the fired flag survives supervisor relaunches, so a recovered run
/// does not re-kill the same rank at the same step during replay).
class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan);

  /// Fate of attempt `attempt` of frame (src, dst, seqno). Counts the
  /// returned fault in the matching counter.
  FrameFate fate(Rank src, Rank dst, std::uint32_t seqno, std::uint32_t attempt);

  /// Deterministic byte offset to flip for a kCorrupt fate.
  [[nodiscard]] std::size_t corrupt_offset(Rank src, Rank dst,
                                           std::uint32_t seqno,
                                           std::uint32_t attempt,
                                           std::size_t frame_size) const;

  /// One-shot crash hook, polled by rank code at each RC step boundary
  /// (kStepStart) and between the exchange's submits and its completion
  /// wait (kMidExchange). Only points matching `phase` are considered.
  bool should_crash(Rank rank, std::size_t step,
                    CrashPhase phase = CrashPhase::kStepStart);

  [[nodiscard]] const FaultPlan& plan() const { return plan_; }

  struct Counters {
    std::atomic<std::uint64_t> dropped{0};
    std::atomic<std::uint64_t> duplicated{0};
    std::atomic<std::uint64_t> delayed{0};
    std::atomic<std::uint64_t> corrupted{0};
    std::atomic<std::uint64_t> crashes{0};
  };
  [[nodiscard]] const Counters& counters() const { return counters_; }

 private:
  [[nodiscard]] std::uint64_t frame_hash(Rank src, Rank dst, std::uint32_t seqno,
                                         std::uint32_t attempt) const;

  FaultPlan plan_;
  Counters counters_;
  std::vector<std::unique_ptr<std::atomic<bool>>> crash_fired_;
};

}  // namespace aacc::rt
