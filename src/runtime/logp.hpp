// LogGP network cost model.
//
// The paper analyses every phase under LogP (Culler et al.) and runs on a
// 1 Gb/s Ethernet cluster. On this single machine, communication is memcpy
// through mailboxes, so "communication time" must be *modeled*: every
// message's byte count is recorded, and these functions replay the log
// under LogGP (LogP + per-byte Gap for long messages) with a choice of
// schedule policy, reproducing the trade-off the paper's personalized
// all-to-all schedule makes (serialize the network to avoid flooding).
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"

namespace aacc::rt {

struct LogGPParams {
  double L = 50e-6;  ///< end-to-end latency (s): small-message Ethernet RTT/2
  double o = 5e-6;   ///< per-message CPU overhead at sender and receiver (s)
  double g = 10e-6;  ///< minimum gap between consecutive messages (s)
  double G = 8e-9;   ///< per-byte gap (s/byte): 1 Gb/s wire = 8 ns/byte
};

/// How a personalized all-to-all is scheduled on the wire.
enum class SchedulePolicy {
  /// The paper's schedule: exactly one message traverses the network at any
  /// time — O(P^2) steps, no contention.
  kSerialized,
  /// Classic shift schedule: P-1 rounds, all ranks send concurrently to
  /// (rank + s) mod P; round time is the slowest message in the round.
  kShifted,
  /// Everyone blasts all messages at once; the wire is shared, so the cost
  /// is the total byte volume serialized through one network, but paying
  /// per-message overheads only once per rank-pair (models flooding).
  kFlood,
};

enum class OpKind : std::uint8_t {
  kPointToPoint,
  kAllToAll,
  kBroadcast,
  kReduce,
};

/// One recorded message. `op` groups messages of a single collective call
/// (all ranks issue collectives in the same order, so op sequence numbers
/// agree across ranks).
struct MsgRecord {
  std::uint32_t op = 0;
  OpKind kind = OpKind::kPointToPoint;
  Rank src = 0;
  Rank dst = 0;
  std::uint64_t bytes = 0;
};

/// Cost of a single message occupying the wire.
double message_cost(const LogGPParams& p, std::uint64_t bytes);

/// Replays a merged message log and returns modeled network seconds. The
/// log may be unsorted; records are grouped by (op, kind).
double modeled_network_seconds(const std::vector<MsgRecord>& log,
                               const LogGPParams& params, SchedulePolicy policy,
                               Rank world_size);

/// Modeled makespan of the log's all-to-all traffic under the k-deep
/// windowed shift schedule (non-a2a records are ignored; collectives run
/// sequentially, so per-op makespans sum).
///
/// Per op, each rank issues its P-1 shift rounds in order. Round i's send
/// may not start before the sender's previous send has cleared its CPU
/// (o + bytes*G, then the g gap) — and, the windowing constraint, before
/// the rank's round i-window arrival has completed: at most `window`
/// messages are in flight per rank. An arrival completes o + bytes*G + L
/// + o after its (remote) send starts. window = 1 reproduces the blocking
/// schedule exactly (each send waits for the previous round's recv);
/// window = P-1 is fully overlapped.
double modeled_exchange_makespan(const std::vector<MsgRecord>& log,
                                 const LogGPParams& params, Rank world_size,
                                 std::uint32_t window);

}  // namespace aacc::rt
