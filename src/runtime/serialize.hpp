// Byte-buffer serialization for inter-rank messages.
//
// Rank state may only cross rank boundaries through these buffers — that is
// what keeps the thread-based runtime an honest stand-in for MPI: byte
// counts fed into the LogGP model are the real payload sizes, and no rank
// can observe another's memory.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <limits>
#include <span>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/check.hpp"
#include "common/types.hpp"

namespace aacc::rt {

class ByteWriter {
 public:
  template <typename T>
    requires std::is_trivially_copyable_v<T>
  void write(const T& value) {
    const auto* p = reinterpret_cast<const std::byte*>(&value);
    buf_.insert(buf_.end(), p, p + sizeof(T));
  }

  /// Appends raw bytes with no length prefix (pre-encoded records that fan
  /// out to several destinations are assembled once and appended per
  /// destination).
  void write_bytes(std::span<const std::byte> bytes) {
    buf_.insert(buf_.end(), bytes.begin(), bytes.end());
  }

  /// LEB128 unsigned varint: 7 value bits per byte, high bit = continue.
  /// 1 byte for values < 128, 2 bytes < 16384, at most 5 bytes for u32
  /// payloads and 10 for the full u64 range.
  void write_varint(std::uint64_t v) {
    while (v >= 0x80) {
      write(static_cast<std::uint8_t>((v & 0x7f) | 0x80));
      v >>= 7;
    }
    write(static_cast<std::uint8_t>(v));
  }

  template <typename T>
    requires std::is_trivially_copyable_v<T>
  void write_vec(const std::vector<T>& v) {
    write(static_cast<std::uint64_t>(v.size()));
    const auto* p = reinterpret_cast<const std::byte*>(v.data());
    buf_.insert(buf_.end(), p, p + v.size() * sizeof(T));
  }

  void write_str(const std::string& s) {
    write(static_cast<std::uint64_t>(s.size()));
    const auto* p = reinterpret_cast<const std::byte*>(s.data());
    buf_.insert(buf_.end(), p, p + s.size());
  }

  [[nodiscard]] std::size_t size() const { return buf_.size(); }

  /// Borrowed view of the accumulated bytes (valid until the next write).
  [[nodiscard]] std::span<const std::byte> view() const { return buf_; }

  /// Drops the contents but keeps the capacity — per-step scratch writers
  /// reuse their allocation across RC steps.
  void clear() { buf_.clear(); }

  /// Moves the accumulated bytes out; the writer is reusable afterwards.
  [[nodiscard]] std::vector<std::byte> take() { return std::move(buf_); }

 private:
  std::vector<std::byte> buf_;
};

// ------------------------------------------------------------------- CRC32
//
// Software CRC-32 (IEEE 802.3, polynomial 0xEDB88320, reflected) for the
// reliable-transport frame checksum (wire format v2.1, docs/PROTOCOL.md).
// Table-driven; the table is built at compile time so the header stays
// dependency-free.

namespace detail {
consteval std::array<std::uint32_t, 256> make_crc32_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1U) != 0 ? 0xEDB88320U ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}
inline constexpr std::array<std::uint32_t, 256> kCrc32Table = make_crc32_table();
}  // namespace detail

/// Incremental update: feed buffers in sequence, starting from
/// crc32_init() and finishing with crc32_final().
[[nodiscard]] constexpr std::uint32_t crc32_init() { return 0xFFFFFFFFU; }
[[nodiscard]] inline std::uint32_t crc32_update(std::uint32_t crc,
                                                std::span<const std::byte> data) {
  for (const std::byte b : data) {
    crc = detail::kCrc32Table[(crc ^ std::to_integer<std::uint32_t>(b)) & 0xFFU] ^
          (crc >> 8);
  }
  return crc;
}
[[nodiscard]] constexpr std::uint32_t crc32_final(std::uint32_t crc) {
  return crc ^ 0xFFFFFFFFU;
}

/// One-shot convenience.
[[nodiscard]] inline std::uint32_t crc32(std::span<const std::byte> data) {
  return crc32_final(crc32_update(crc32_init(), data));
}

class ByteReader {
 public:
  explicit ByteReader(std::span<const std::byte> buf) : buf_(buf) {}

  template <typename T>
    requires std::is_trivially_copyable_v<T>
  T read() {
    AACC_CHECK_MSG(pos_ + sizeof(T) <= buf_.size(), "message underflow");
    T value;
    std::memcpy(&value, buf_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return value;
  }

  template <typename T>
    requires std::is_trivially_copyable_v<T>
  std::vector<T> read_vec() {
    const auto n = read<std::uint64_t>();
    AACC_CHECK_MSG(pos_ + n * sizeof(T) <= buf_.size(), "message underflow");
    std::vector<T> v(n);
    std::memcpy(v.data(), buf_.data() + pos_, n * sizeof(T));
    pos_ += n * sizeof(T);
    return v;
  }

  std::string read_str() {
    const auto n = read<std::uint64_t>();
    AACC_CHECK_MSG(pos_ + n <= buf_.size(), "message underflow");
    std::string s(reinterpret_cast<const char*>(buf_.data() + pos_), n);
    pos_ += n;
    return s;
  }

  std::uint64_t read_varint() {
    std::uint64_t v = 0;
    unsigned shift = 0;
    for (;;) {
      const auto b = read<std::uint8_t>();
      AACC_CHECK_MSG(shift < 64, "varint overflow");
      v |= static_cast<std::uint64_t>(b & 0x7f) << shift;
      if ((b & 0x80) == 0) break;
      shift += 7;
    }
    return v;
  }

  [[nodiscard]] bool done() const { return pos_ == buf_.size(); }
  [[nodiscard]] std::size_t remaining() const { return buf_.size() - pos_; }

 private:
  std::span<const std::byte> buf_;
  std::size_t pos_ = 0;
};

// ---------------------------------------------------------------- wire v2
//
// Compressed codecs for the DV-update message path and checkpoints (see
// docs/PROTOCOL.md §"Wire format v2"). Values of u32 domains with an
// all-ones sentinel (kInfDist / kNoVertex) map through code = 0 for the
// sentinel, value + 1 otherwise, so the common small values stay 1-byte
// varints and the sentinel costs 1 byte instead of 5.

inline constexpr std::uint64_t kSentinelCode = 0;

/// kInfDist / kNoVertex → 0, v → v + 1. Saturating arithmetic guarantees
/// every non-sentinel value is < 2^32 - 1, so v + 1 never collides.
[[nodiscard]] constexpr std::uint64_t encode_u32_sentinel(std::uint32_t v) {
  return v == std::numeric_limits<std::uint32_t>::max()
             ? kSentinelCode
             : static_cast<std::uint64_t>(v) + 1;
}
[[nodiscard]] constexpr std::uint32_t decode_u32_sentinel(std::uint64_t code) {
  return code == kSentinelCode ? std::numeric_limits<std::uint32_t>::max()
                               : static_cast<std::uint32_t>(code - 1);
}

/// Varint-packs a u32 vector under the sentinel mapping (checkpoint rows:
/// distances and next hops are mostly small or the sentinel).
inline void write_packed_u32s(ByteWriter& w, const std::vector<std::uint32_t>& v) {
  w.write_varint(v.size());
  for (const std::uint32_t x : v) w.write_varint(encode_u32_sentinel(x));
}
inline std::vector<std::uint32_t> read_packed_u32s(ByteReader& r) {
  const auto n = r.read_varint();
  std::vector<std::uint32_t> v;
  v.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    v.push_back(decode_u32_sentinel(r.read_varint()));
  }
  return v;
}

/// Delta-encodes a strictly ascending id list: first id raw, then
/// (id - prev - 1) — dense dirty ranges become runs of 0x00 bytes.
inline void write_ascending_ids(ByteWriter& w, const std::vector<VertexId>& ids) {
  w.write_varint(ids.size());
  VertexId prev = 0;
  for (std::size_t i = 0; i < ids.size(); ++i) {
    if (i == 0) {
      w.write_varint(ids[0]);
    } else {
      AACC_DCHECK(ids[i] > prev);
      w.write_varint(ids[i] - prev - 1);
    }
    prev = ids[i];
  }
}
inline std::vector<VertexId> read_ascending_ids(ByteReader& r) {
  const auto n = r.read_varint();
  std::vector<VertexId> ids;
  ids.reserve(n);
  VertexId prev = 0;
  for (std::uint64_t i = 0; i < n; ++i) {
    const auto delta = static_cast<VertexId>(r.read_varint());
    prev = (i == 0) ? delta : prev + delta + 1;
    ids.push_back(prev);
  }
  return ids;
}

// ---- DV-update records --------------------------------------------------
//
// One record carries the changed entries of one row to a subscriber. Every
// record is self-describing: a leading version byte selects the codec, so
// a stream may mix versions and old (v1) payloads stay decodable.
//
//   v1:  u8 version, u32 vid, u32 count, count × (u32 target, u32 dist)
//   v2:  u8 version, varint vid, varint count,
//        count × (varint target-delta, varint dist-code)
//        targets strictly ascending; first delta is the target itself,
//        later deltas are (target - prev - 1); dist-code is the sentinel
//        mapping above (poison markers ship as 1 byte).

inline constexpr std::uint8_t kDvRecordV1 = 1;
inline constexpr std::uint8_t kDvRecordV2 = 2;

/// Entries must be sorted by target id (ascending, unique).
inline void write_dv_record(ByteWriter& w, VertexId vid,
                            const std::vector<std::pair<VertexId, Dist>>& entries,
                            std::uint8_t version = kDvRecordV2) {
  w.write(version);
  if (version == kDvRecordV1) {
    w.write(vid);
    w.write(static_cast<std::uint32_t>(entries.size()));
    for (const auto& [t, d] : entries) {
      w.write(t);
      w.write(d);
    }
    return;
  }
  AACC_CHECK_MSG(version == kDvRecordV2, "unknown DV record version");
  w.write_varint(vid);
  w.write_varint(entries.size());
  VertexId prev = 0;
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const auto [t, d] = entries[i];
    if (i == 0) {
      w.write_varint(t);
    } else {
      AACC_DCHECK(t > prev);
      w.write_varint(t - prev - 1);
    }
    prev = t;
    w.write_varint(encode_u32_sentinel(d));
  }
}

/// Streaming decoder for one record: construct, read vid()/count(), then
/// call next() exactly count() times. Dispatches on the version byte.
class DvRecordReader {
 public:
  explicit DvRecordReader(ByteReader& r) : r_(r) {
    version_ = r_.read<std::uint8_t>();
    if (version_ == kDvRecordV1) {
      vid_ = r_.read<VertexId>();
      count_ = r_.read<std::uint32_t>();
      return;
    }
    AACC_CHECK_MSG(version_ == kDvRecordV2, "unknown DV record version");
    vid_ = static_cast<VertexId>(r_.read_varint());
    count_ = static_cast<std::uint32_t>(r_.read_varint());
  }

  [[nodiscard]] VertexId vid() const { return vid_; }
  [[nodiscard]] std::uint32_t count() const { return count_; }

  std::pair<VertexId, Dist> next() {
    AACC_DCHECK(read_ < count_);
    if (version_ == kDvRecordV1) {
      const auto t = r_.read<VertexId>();
      const auto d = r_.read<Dist>();
      ++read_;
      return {t, d};
    }
    const auto delta = static_cast<VertexId>(r_.read_varint());
    prev_ = (read_ == 0) ? delta : prev_ + delta + 1;
    ++read_;
    return {prev_, decode_u32_sentinel(r_.read_varint())};
  }

 private:
  ByteReader& r_;
  std::uint8_t version_ = 0;
  VertexId vid_ = 0;
  std::uint32_t count_ = 0;
  std::uint32_t read_ = 0;
  VertexId prev_ = 0;
};

}  // namespace aacc::rt
