// Byte-buffer serialization for inter-rank messages.
//
// Rank state may only cross rank boundaries through these buffers — that is
// what keeps the thread-based runtime an honest stand-in for MPI: byte
// counts fed into the LogGP model are the real payload sizes, and no rank
// can observe another's memory.
#pragma once

#include <cstddef>
#include <cstring>
#include <span>
#include <string>
#include <type_traits>
#include <vector>

#include "common/check.hpp"

namespace aacc::rt {

class ByteWriter {
 public:
  template <typename T>
    requires std::is_trivially_copyable_v<T>
  void write(const T& value) {
    const auto* p = reinterpret_cast<const std::byte*>(&value);
    buf_.insert(buf_.end(), p, p + sizeof(T));
  }

  template <typename T>
    requires std::is_trivially_copyable_v<T>
  void write_vec(const std::vector<T>& v) {
    write(static_cast<std::uint64_t>(v.size()));
    const auto* p = reinterpret_cast<const std::byte*>(v.data());
    buf_.insert(buf_.end(), p, p + v.size() * sizeof(T));
  }

  void write_str(const std::string& s) {
    write(static_cast<std::uint64_t>(s.size()));
    const auto* p = reinterpret_cast<const std::byte*>(s.data());
    buf_.insert(buf_.end(), p, p + s.size());
  }

  [[nodiscard]] std::size_t size() const { return buf_.size(); }

  /// Moves the accumulated bytes out; the writer is reusable afterwards.
  [[nodiscard]] std::vector<std::byte> take() { return std::move(buf_); }

 private:
  std::vector<std::byte> buf_;
};

class ByteReader {
 public:
  explicit ByteReader(std::span<const std::byte> buf) : buf_(buf) {}

  template <typename T>
    requires std::is_trivially_copyable_v<T>
  T read() {
    AACC_CHECK_MSG(pos_ + sizeof(T) <= buf_.size(), "message underflow");
    T value;
    std::memcpy(&value, buf_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return value;
  }

  template <typename T>
    requires std::is_trivially_copyable_v<T>
  std::vector<T> read_vec() {
    const auto n = read<std::uint64_t>();
    AACC_CHECK_MSG(pos_ + n * sizeof(T) <= buf_.size(), "message underflow");
    std::vector<T> v(n);
    std::memcpy(v.data(), buf_.data() + pos_, n * sizeof(T));
    pos_ += n * sizeof(T);
    return v;
  }

  std::string read_str() {
    const auto n = read<std::uint64_t>();
    AACC_CHECK_MSG(pos_ + n <= buf_.size(), "message underflow");
    std::string s(reinterpret_cast<const char*>(buf_.data() + pos_), n);
    pos_ += n;
    return s;
  }

  [[nodiscard]] bool done() const { return pos_ == buf_.size(); }
  [[nodiscard]] std::size_t remaining() const { return buf_.size() - pos_; }

 private:
  std::span<const std::byte> buf_;
  std::size_t pos_ = 0;
};

}  // namespace aacc::rt
