// Weighted dynamic scenario: a road network (grid + highway shortcuts)
// where edge weights are travel times. Rush-hour jams raise weights,
// incidents close roads, road works finish and reopen them — and the
// engine keeps depot-placement scores (closeness = inverse total travel
// time) current throughout. Exercises WeightChangeEvent both directions.
//
//   ./traffic_network [side] [ranks]
#include <cstdio>
#include <cstdlib>

#include "aacc/aacc.hpp"

int main(int argc, char** argv) {
  using namespace aacc;
  const auto side = static_cast<VertexId>(argc > 1 ? std::atoi(argv[1]) : 22);
  const auto ranks = static_cast<Rank>(argc > 2 ? std::atoi(argv[2]) : 8);

  // City grid with travel times 2..5, plus a few fast highways.
  Rng rng(31);
  Graph g = grid2d(side, side, rng, WeightRange{2, 5});
  const VertexId n = g.num_vertices();
  for (int h = 0; h < 6; ++h) {
    const auto a = static_cast<VertexId>(rng.next_below(n));
    const auto b = static_cast<VertexId>(rng.next_below(n));
    if (a != b && !g.has_edge(a, b)) g.add_edge(a, b, 1);  // highway
  }
  std::printf("road network: %ux%u grid + highways, %zu segments, %d ranks\n",
              side, side, g.num_edges(), ranks);

  // Rush hour at step 2: jams on 10% of segments (weights triple).
  // Incident at step 5: two road closures near the centre.
  // Step 8: jams clear back to baseline.
  EventSchedule schedule;
  std::vector<std::tuple<VertexId, VertexId, Weight>> jammed;
  {
    EventBatch rush;
    rush.at_step = 2;
    const auto edges = g.edges();
    for (std::size_t i = 0; i < edges.size(); i += 10) {
      const auto& [u, v, w] = edges[i];
      jammed.emplace_back(u, v, w);
      rush.events.emplace_back(WeightChangeEvent{u, v, static_cast<Weight>(3 * w)});
    }
    schedule.push_back(std::move(rush));

    EventBatch incident;
    incident.at_step = 5;
    const VertexId centre = (side / 2) * side + side / 2;
    const auto nbrs = g.neighbors(centre);
    for (std::size_t i = 0; i < std::min<std::size_t>(2, nbrs.size()); ++i) {
      incident.events.emplace_back(EdgeDeleteEvent{centre, nbrs[i].to});
    }
    schedule.push_back(std::move(incident));

    EventBatch clear;
    clear.at_step = 8;
    for (const auto& [u, v, w] : jammed) {
      clear.events.emplace_back(WeightChangeEvent{u, v, w});
    }
    schedule.push_back(std::move(clear));
  }
  std::printf("events: %zu jams @rc2, 2 closures @rc5, all-clear @rc8\n",
              schedule[0].events.size());

  EngineConfig cfg;
  cfg.num_ranks = ranks;
  cfg.record_step_quality = true;
  AnytimeEngine engine(g, cfg);
  const RunResult r = engine.run(schedule);

  std::uint64_t total_poisons = 0;
  for (const auto& s : r.stats.steps) total_poisons += s.poisons;
  std::printf("\nconverged in %zu RC steps; %llu travel-time entries "
              "invalidated and re-derived across the jam/closure/clear cycle\n",
              r.stats.rc_steps,
              static_cast<unsigned long long>(total_poisons));

  const auto depots = top_k(r.closeness, 3);
  std::printf("\nbest depot locations (post all-clear):\n");
  for (const VertexId v : depots) {
    std::printf("  cell (%u,%u): closeness %.6g\n", v / side, v % side,
                r.closeness[v]);
  }
  std::printf("\n%s\n", r.stats.summary().c_str());
  if (const char* p = std::getenv("AACC_STATS_JSON")) {
    write_stats_json(p, r.stats);
  }
  return 0;
}
