// Quickstart: compute closeness centrality on a scale-free graph with the
// anytime anywhere engine, inject a dynamic change mid-analysis, and print
// the most central actors before and after.
//
//   ./quickstart [n] [ranks]
//
// Set AACC_TRACE=<path> to record a span trace of the run and write it as
// Chrome trace-event JSON (open in chrome://tracing or
// https://ui.perfetto.dev; see docs/OBSERVABILITY.md).
// Set AACC_PROGRESS=<path> to stream the live NDJSON progress feed there
// (replay it with `aacc tail <path>`; docs/OBSERVABILITY.md §Progress
// events).
#include <cstdio>
#include <cstdlib>

#include "aacc/aacc.hpp"

int main(int argc, char** argv) {
  using namespace aacc;
  const auto n = static_cast<VertexId>(argc > 1 ? std::atoi(argv[1]) : 1000);
  const auto ranks = static_cast<Rank>(argc > 2 ? std::atoi(argv[2]) : 8);

  // 1. A synthetic social network (Barabási–Albert: heavy-tailed degrees).
  Rng rng(42);
  Graph g = barabasi_albert(n, 2, rng);
  std::printf("graph: %u vertices, %zu edges, %d logical processors\n",
              g.num_vertices(), g.num_edges(), ranks);

  // 2. A dynamic change arriving at recombination step 2: a new actor joins
  //    and connects to three existing hubs.
  EventSchedule schedule;
  VertexAddEvent newcomer;
  newcomer.id = g.num_vertices();
  newcomer.edges = {{0, 1}, {1, 1}, {2, 1}};
  schedule.push_back({2, {newcomer}});

  // 3. Run domain decomposition + initial approximation + recombination.
  EngineConfig cfg;
  cfg.num_ranks = ranks;
  cfg.assign = AssignStrategy::kRoundRobin;
  if (const char* trace_path = std::getenv("AACC_TRACE")) {
    cfg.trace.enabled = true;
    cfg.trace.path = trace_path;
    // Flow-stamp the transport so the trace feeds `aacc analyze
    // --critical-path` (docs/OBSERVABILITY.md §Causal flows).
    cfg.trace.flow_stamping = true;
  }
  if (const char* progress_path = std::getenv("AACC_PROGRESS")) {
    cfg.progress.path = progress_path;
  }
  AnytimeEngine engine(g, cfg);
  const RunResult result = engine.run(schedule);

  // 4. Inspect the result.
  std::printf("\n%s\n", result.stats.summary().c_str());
  if (cfg.trace.enabled) {
    std::printf("trace: %s (%zu events)\n", cfg.trace.path.c_str(),
                result.trace.events.size());
  }
  if (!cfg.progress.path.empty()) {
    std::printf("progress feed: %s (replay with `aacc tail`)\n",
                cfg.progress.path.c_str());
  }

  const auto top = top_k(result.closeness, 5);
  std::printf("\ntop-5 closeness centrality (after the change):\n");
  for (const VertexId v : top) {
    std::printf("  vertex %-6u C = %.6g%s\n", v, result.closeness[v],
                v == newcomer.id ? "   <- the newcomer" : "");
  }
  std::printf("newcomer %u: C = %.6g, harmonic = %.4f\n", newcomer.id,
              result.closeness[newcomer.id], result.harmonic[newcomer.id]);
  return 0;
}
