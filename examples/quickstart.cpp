// Quickstart: compute closeness centrality on a scale-free graph with the
// anytime anywhere engine, inject a dynamic change mid-analysis, and print
// the most central actors before and after.
//
//   ./quickstart [n] [ranks]
#include <cstdio>
#include <cstdlib>

#include "analysis/closeness.hpp"
#include "common/rng.hpp"
#include "core/engine.hpp"
#include "graph/generators.hpp"

int main(int argc, char** argv) {
  using namespace aacc;
  const auto n = static_cast<VertexId>(argc > 1 ? std::atoi(argv[1]) : 1000);
  const auto ranks = static_cast<Rank>(argc > 2 ? std::atoi(argv[2]) : 8);

  // 1. A synthetic social network (Barabási–Albert: heavy-tailed degrees).
  Rng rng(42);
  Graph g = barabasi_albert(n, 2, rng);
  std::printf("graph: %u vertices, %zu edges, %d logical processors\n",
              g.num_vertices(), g.num_edges(), ranks);

  // 2. A dynamic change arriving at recombination step 2: a new actor joins
  //    and connects to three existing hubs.
  EventSchedule schedule;
  VertexAddEvent newcomer;
  newcomer.id = g.num_vertices();
  newcomer.edges = {{0, 1}, {1, 1}, {2, 1}};
  schedule.push_back({2, {newcomer}});

  // 3. Run domain decomposition + initial approximation + recombination.
  EngineConfig cfg;
  cfg.num_ranks = ranks;
  cfg.assign = AssignStrategy::kRoundRobin;
  AnytimeEngine engine(g, cfg);
  const RunResult result = engine.run(schedule);

  // 4. Inspect the result.
  std::printf("\nconverged in %zu RC steps | %.2f MB exchanged | "
              "modeled cluster time %.3f s\n",
              result.stats.rc_steps,
              static_cast<double>(result.stats.total_bytes) / 1e6,
              result.stats.modeled_makespan_seconds);

  const auto top = top_k(result.closeness, 5);
  std::printf("\ntop-5 closeness centrality (after the change):\n");
  for (const VertexId v : top) {
    std::printf("  vertex %-6u C = %.6g%s\n", v, result.closeness[v],
                v == newcomer.id ? "   <- the newcomer" : "");
  }
  std::printf("newcomer %u: C = %.6g, harmonic = %.4f\n", newcomer.id,
              result.closeness[newcomer.id], result.harmonic[newcomer.id]);
  return 0;
}
