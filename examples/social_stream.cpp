// Streaming social network: actors join continuously over ten analysis
// steps (the paper's "incremental vertex additions" scenario). Demonstrates
// the anytime property — after every RC step the engine exposes a usable
// centrality estimate — and compares the cost of keeping the analysis live
// against restarting it for every batch.
//
//   ./social_stream [n] [ranks] [batches] [per_batch]
#include <cstdio>
#include <cstdlib>

#include "aacc/aacc.hpp"

int main(int argc, char** argv) {
  using namespace aacc;
  const auto n = static_cast<VertexId>(argc > 1 ? std::atoi(argv[1]) : 1200);
  const auto ranks = static_cast<Rank>(argc > 2 ? std::atoi(argv[2]) : 8);
  const int batches = argc > 3 ? std::atoi(argv[3]) : 5;
  const auto per_batch = static_cast<VertexId>(argc > 4 ? std::atoi(argv[4]) : 30);

  Rng rng(7);
  Graph g = barabasi_albert(n, 2, rng);

  // Build the arrival stream: each batch is a set of newcomers that attach
  // preferentially to the current graph (organic growth).
  EventSchedule schedule;
  Graph cursor = g;
  std::vector<VertexId> pool;
  for (const auto& [u, v, w] : g.edges()) {
    (void)w;
    pool.push_back(u);
    pool.push_back(v);
  }
  for (int b = 0; b < batches; ++b) {
    EventBatch batch;
    batch.at_step = static_cast<std::size_t>(1 + 2 * b);
    for (VertexId i = 0; i < per_batch; ++i) {
      VertexAddEvent ev;
      ev.id = cursor.num_vertices();
      while (ev.edges.size() < 2) {
        const VertexId to = pool[rng.next_below(pool.size())];
        if (to != ev.id && (ev.edges.empty() || ev.edges[0].first != to)) {
          ev.edges.emplace_back(to, 1);
        }
      }
      apply_event(cursor, ev);
      pool.push_back(ev.id);
      pool.push_back(ev.edges[0].first);
      batch.events.emplace_back(std::move(ev));
    }
    schedule.push_back(std::move(batch));
  }
  std::printf("stream: %d batches x %u newcomers onto %u vertices (%d ranks)\n",
              batches, per_batch, n, ranks);

  // Live analysis with per-step quality snapshots.
  EngineConfig cfg;
  cfg.num_ranks = ranks;
  cfg.assign = AssignStrategy::kRoundRobin;
  cfg.record_step_quality = true;
  AnytimeEngine engine(g, cfg);
  const RunResult live = engine.run(schedule);

  const auto exact = harmonic_exact(engine.graph());
  std::printf("\nanytime quality (harmonic centrality vs exact):\n");
  std::printf("%6s %14s %12s\n", "step", "mean_rel_err", "top20_hit");
  for (std::size_t s = 0; s < live.step_harmonic.size(); ++s) {
    std::printf("%6zu %14.4f %12.2f\n", s,
                mean_relative_error(exact, live.step_harmonic[s]),
                top_k_overlap(exact, live.step_harmonic[s], 20));
  }

  // Cost comparison against restart-per-batch.
  const RunResult restart = run_baseline_restart(g, schedule, cfg);
  std::printf("\ncost of staying live vs restarting per batch:\n");
  std::printf("%-22s %12s %12s %10s\n", "", "cpu_s", "MB_sent", "rc_steps");
  std::printf("%-22s %12.3f %12.2f %10zu\n", "anytime anywhere",
              live.stats.total_cpu_seconds,
              static_cast<double>(live.stats.total_bytes) / 1e6,
              live.stats.rc_steps);
  std::printf("%-22s %12.3f %12.2f %10zu\n", "baseline restart",
              restart.stats.total_cpu_seconds,
              static_cast<double>(restart.stats.total_bytes) / 1e6,
              restart.stats.rc_steps);

  std::printf("\nlive run:\n%s\n", live.stats.summary().c_str());
  if (const char* p = std::getenv("AACC_STATS_JSON")) {
    write_stats_json(p, live.stats);
  }
  return 0;
}
