// Fault-tolerance drill: checkpoint a live analysis, "lose the cluster",
// resume from the snapshot in a fresh world, and verify the final
// centrality equals an uninterrupted run — while changes keep arriving on
// both sides of the crash.
//
//   ./fault_tolerance [n] [ranks] [checkpoint_step]
#include <cstdio>
#include <cstdlib>

#include "aacc/aacc.hpp"

int main(int argc, char** argv) {
  using namespace aacc;
  const auto n = static_cast<VertexId>(argc > 1 ? std::atoi(argv[1]) : 800);
  const auto ranks = static_cast<Rank>(argc > 2 ? std::atoi(argv[2]) : 8);
  const auto cp_step =
      static_cast<std::size_t>(argc > 3 ? std::atoi(argv[3]) : 3);

  Rng rng(19);
  Graph g = barabasi_albert(n, 2, rng);

  // Changes before and after the crash point.
  EventSchedule schedule;
  Graph cursor = g;
  std::vector<VertexId> pool;
  for (const auto& [u, v, w] : g.edges()) {
    (void)w;
    pool.push_back(u);
    pool.push_back(v);
  }
  for (const std::size_t at : {std::size_t{1}, cp_step + 2}) {
    EventBatch batch;
    batch.at_step = at;
    for (int i = 0; i < 15; ++i) {
      VertexAddEvent ev;
      ev.id = cursor.num_vertices();
      ev.edges = {{pool[rng.next_below(pool.size())], 1}};
      apply_event(cursor, ev);
      batch.events.emplace_back(std::move(ev));
    }
    schedule.push_back(std::move(batch));
  }

  std::printf("analysis of %u vertices on %d ranks; crash after RC step %zu\n",
              n, ranks, cp_step);

  // Reference: the run that never crashes.
  EngineConfig cfg;
  cfg.num_ranks = ranks;
  AnytimeEngine straight(g, cfg);
  const RunResult direct = straight.run(schedule);

  // Checkpointed run: stops at cp_step with a snapshot.
  EngineConfig cp_cfg = cfg;
  cp_cfg.checkpoint_at_step = cp_step;
  AnytimeEngine first(g, cp_cfg);
  const RunResult interim = first.run(schedule);
  std::printf("checkpoint taken: %.2f MB across %d ranks (batches consumed: %zu)\n",
              static_cast<double>(interim.checkpoint.bytes()) / 1e6,
              interim.checkpoint.num_ranks, interim.checkpoint.next_batch);

  // "The cluster burns down." Resume from the snapshot alone.
  AnytimeEngine resumed(g, interim.checkpoint, cfg);
  const RunResult recovered = resumed.run(schedule);

  double max_diff = 0.0;
  for (VertexId v = 0; v < direct.closeness.size(); ++v) {
    max_diff = std::max(max_diff,
                        std::abs(direct.closeness[v] - recovered.closeness[v]));
  }
  std::printf("recovered run: %zu further RC steps; max |closeness diff| vs "
              "uninterrupted run = %.3g %s\n",
              recovered.stats.rc_steps - cp_step, max_diff,
              max_diff == 0.0 ? "(identical)" : "");

  std::printf("\n%s\n", recovered.stats.summary().c_str());
  if (const char* p = std::getenv("AACC_STATS_JSON")) {
    write_stats_json(p, recovered.stats);
  }
  return max_diff == 0.0 ? 0 : 1;
}
