// Growing citation network: papers arrive in yearly cohorts citing earlier
// work (pure vertex additions with community structure — research areas).
// Compares the three processor-assignment strategies on the same stream,
// reporting time, traffic, new cut-edges, and final load balance — a
// miniature of the paper's Figures 5-8 as a library-user scenario.
//
//   ./citation_growth [n0] [ranks] [years] [per_year]
#include <cstdio>
#include <cstdlib>

#include "aacc/aacc.hpp"

int main(int argc, char** argv) {
  using namespace aacc;
  const auto n0 = static_cast<VertexId>(argc > 1 ? std::atoi(argv[1]) : 1000);
  const auto ranks = static_cast<Rank>(argc > 2 ? std::atoi(argv[2]) : 8);
  const int years = argc > 3 ? std::atoi(argv[3]) : 4;
  const auto per_year = static_cast<VertexId>(argc > 4 ? std::atoi(argv[4]) : 60);

  Rng rng(3);
  Graph g = barabasi_albert(n0, 2, rng);

  // Yearly cohorts: each new paper cites one classic (preferential) and,
  // within its research area, the area's seminal new paper and its
  // predecessor — giving the cohort the community structure CutEdge-PS
  // exploits.
  const unsigned areas = 6;
  EventSchedule schedule;
  Graph cursor = g;
  std::vector<VertexId> pool;
  for (const auto& [u, v, w] : g.edges()) {
    (void)w;
    pool.push_back(u);
    pool.push_back(v);
  }
  for (int y = 0; y < years; ++y) {
    EventBatch batch;
    batch.at_step = static_cast<std::size_t>(1 + 2 * y);
    const VertexId base = cursor.num_vertices();
    const VertexId per_area = per_year / areas;
    for (VertexId i = 0; i < per_year; ++i) {
      VertexAddEvent ev;
      ev.id = base + i;
      const VertexId area_head = base + (i / per_area) * per_area;
      if (ev.id > area_head) ev.edges.emplace_back(ev.id - 1, 1);
      if (ev.id > area_head + 1) ev.edges.emplace_back(area_head, 1);
      ev.edges.emplace_back(pool[rng.next_below(pool.size())], 1);
      apply_event(cursor, ev);
      batch.events.emplace_back(std::move(ev));
    }
    schedule.push_back(std::move(batch));
  }
  std::printf("citation stream: %d cohorts x %u papers onto %u (%d ranks)\n\n",
              years, per_year, n0, ranks);

  std::printf("%-16s %10s %10s %10s %14s %10s\n", "strategy", "wall_s",
              "MB_sent", "rc_steps", "new_cut_edges", "imbalance");
  RunStats last;
  for (const AssignStrategy strat :
       {AssignStrategy::kRoundRobin, AssignStrategy::kCutEdge,
        AssignStrategy::kRepartition}) {
    EngineConfig cfg;
    cfg.num_ranks = ranks;
    cfg.assign = strat;
    Timer t;
    AnytimeEngine engine(g, cfg);
    const RunResult r = engine.run(schedule);
    const char* name = strat == AssignStrategy::kRoundRobin ? "RoundRobin-PS"
                       : strat == AssignStrategy::kCutEdge  ? "CutEdge-PS"
                                                            : "Repartition-S";
    std::printf("%-16s %10.3f %10.2f %10zu %14lld %10.3f\n", name, t.seconds(),
                static_cast<double>(r.stats.total_bytes) / 1e6, r.stats.rc_steps,
                static_cast<long long>(r.stats.cut_edges_final) -
                    static_cast<long long>(r.stats.cut_edges_initial),
                r.stats.imbalance_final);
    last = r.stats;
  }

  std::printf("\nlast strategy (Repartition-S):\n%s\n", last.summary().c_str());
  if (const char* p = std::getenv("AACC_STATS_JSON")) {
    write_stats_json(p, last);
  }
  return 0;
}
