// Anytime query serving: open an EngineSession over a social graph, stream
// follower churn into it from a feeder thread, and answer closeness queries
// the whole time from the published snapshots. Every answer carries its
// staleness contract (publishing step vs engine step, convergence
// estimators), and close() returns the exact result a batch run over the
// same mutations would have produced — which the example verifies.
//
//   ./serving [n] [ranks] [batches] [edges_per_batch]
#include <cstdio>
#include <cstdlib>
#include <set>
#include <thread>
#include <utility>
#include <vector>

#include "aacc/aacc.hpp"

int main(int argc, char** argv) {
  using namespace aacc;
  const auto n = static_cast<VertexId>(argc > 1 ? std::atoi(argv[1]) : 1500);
  const auto ranks = static_cast<Rank>(argc > 2 ? std::atoi(argv[2]) : 8);
  const int batches = argc > 3 ? std::atoi(argv[3]) : 12;
  const auto per_batch =
      static_cast<std::size_t>(argc > 4 ? std::atoi(argv[4]) : 16);

  Rng rng(11);
  const Graph g = barabasi_albert(n, 2, rng);
  std::printf("serving %u vertices on %d ranks; %d batches x %zu edges\n",
              g.num_vertices(), ranks, batches, per_batch);

  EngineConfig cfg;
  cfg.num_ranks = ranks;
  cfg.publish_every = 1;      // fresh snapshot after every RC step
  cfg.max_snapshot_lag = 0;   // never flag answers stale, just report age

  serve::EngineSession session(g, cfg);
  const serve::QueryView view = session.view();

  // Feeder: new follow edges, deduplicated so an add never collides with an
  // existing edge (duplicate adds are a schedule error).
  std::set<std::pair<VertexId, VertexId>> present;
  for (const auto& [u, v, w] : g.edges()) {
    (void)w;
    present.emplace(std::min(u, v), std::max(u, v));
  }
  std::thread feeder([&session, &present, n, batches, per_batch] {
    Rng er(23);
    for (int b = 0; b < batches; ++b) {
      std::vector<Event> batch;
      while (batch.size() < per_batch) {
        const auto u = static_cast<VertexId>(er.next_below(n));
        const auto v = static_cast<VertexId>(er.next_below(n));
        if (u == v) continue;
        const auto key = std::make_pair(std::min(u, v), std::max(u, v));
        if (!present.insert(key).second) continue;
        batch.push_back(EdgeAddEvent{u, v, 1});
      }
      session.ingest(std::move(batch));
    }
  });

  // Query while the churn drains. Answers lag the engine by a few steps —
  // that lag is exactly what meta reports. (Before the first RC step there
  // is nothing published yet, so the first query spins briefly.)
  for (int q = 0; q < 6; ++q) {
    serve::TopkResponse top = view.top_k(3);
    for (int spin = 0; top.entries.empty() && spin < 500; ++spin) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      top = view.top_k(3);
    }
    std::printf("query %d: ", q);
    if (top.entries.empty()) {
      std::printf("no snapshot yet");
    } else {
      for (const auto& e : top.entries) {
        std::printf("v%u=%.4g  ", e.v, e.closeness);
      }
    }
    std::printf("[step %zu/%zu age %zu", top.meta.step, top.meta.engine_step,
                top.meta.age_steps);
    if (top.meta.has_estimators) {
      std::printf("  overlap %.2f tau %+.2f", top.meta.topk_overlap,
                  top.meta.kendall_tau);
    }
    std::printf("]\n");
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }

  feeder.join();
  const RunResult live = session.close();
  std::printf("\nclosed after %zu rc steps, %llu queries answered\n",
              live.stats.rc_steps,
              static_cast<unsigned long long>(session.queries_answered()));

  // The view outlives the session's run: post-close answers are the exact
  // final state at age 0.
  const auto final_top = view.top_k(5);
  std::printf("final top-5 (age %zu):\n", final_top.meta.age_steps);
  for (std::size_t i = 0; i < final_top.entries.size(); ++i) {
    std::printf("  %zu. v %-8u %.6g  (rank %zu)\n", i + 1,
                final_top.entries[i].v, final_top.entries[i].closeness,
                view.rank_of(final_top.entries[i].v).rank);
  }

  // Cross-check: a batch run over the ingested schedule gives the same
  // values (the session pins each batch at the step that consumed it, so we
  // compare against the session's own exact accessors).
  const auto best = live.top_closeness(5);
  bool match = best.size() == final_top.entries.size();
  for (std::size_t i = 0; match && i < best.size(); ++i) {
    match = best[i] == final_top.entries[i].v &&
            live.closeness_of(best[i]) == final_top.entries[i].closeness;
  }
  std::printf("snapshot vs RunResult top-5: %s\n", match ? "exact" : "MISMATCH");
  std::printf("\n%s\n", live.stats.summary().c_str());
  return match ? 0 : 1;
}
