// Network outage drill: a communication network loses links and a relay
// node mid-analysis (the title paper's edge-deletion scenario plus the
// vertex-deletion extension), then partially recovers. Shows how the
// engine's route-poisoning keeps centrality correct through deletions
// without restarting, and how the ranking of backup relays shifts.
//
//   ./network_outage [n] [ranks]
#include <cstdio>
#include <cstdlib>

#include "aacc/aacc.hpp"

int main(int argc, char** argv) {
  using namespace aacc;
  const auto n = static_cast<VertexId>(argc > 1 ? std::atoi(argv[1]) : 800);
  const auto ranks = static_cast<Rank>(argc > 2 ? std::atoi(argv[2]) : 8);

  // A small-world backbone: ring of local links plus long-range shortcuts.
  Rng rng(11);
  Graph g = watts_strogatz(n, 3, 0.1, rng);

  // Pre-outage ranking (exact, sequential) to pick the "hub" we will lose.
  const auto before = closeness_exact(g);
  const auto hubs = top_k(before, 4);
  const VertexId lost = hubs[0];
  std::printf("backbone: %u nodes, %zu links; most central relay: %u\n",
              g.num_vertices(), g.num_edges(), lost);

  // Outage at RC step 3: the top relay dies with all its links, and two of
  // the runner-ups lose a link each. At step 6 a repair crew adds bypass
  // links around the hole.
  EventSchedule schedule;
  {
    EventBatch outage;
    outage.at_step = 3;
    outage.events.emplace_back(VertexDeleteEvent{lost});
    const auto nb1 = g.neighbors(hubs[1]);
    const auto nb2 = g.neighbors(hubs[2]);
    if (!nb1.empty() && nb1[0].to != lost) {
      outage.events.emplace_back(EdgeDeleteEvent{hubs[1], nb1[0].to});
    }
    if (!nb2.empty() && nb2[0].to != lost) {
      outage.events.emplace_back(EdgeDeleteEvent{hubs[2], nb2[0].to});
    }
    schedule.push_back(std::move(outage));
  }
  {
    EventBatch repair;
    repair.at_step = 6;
    // Bypass links between the ring neighbours of the dead relay.
    const VertexId a = (lost + 1) % n;
    const VertexId b = (lost + n - 1) % n;
    if (a != b && !g.has_edge(a, b)) {
      repair.events.emplace_back(EdgeAddEvent{a, b, 1});
    }
    schedule.push_back(std::move(repair));
  }

  EngineConfig cfg;
  cfg.num_ranks = ranks;
  AnytimeEngine engine(g, cfg);
  const RunResult result = engine.run(schedule);

  std::printf("\nconverged in %zu RC steps; %llu entries invalidated and "
              "re-derived (route poisoning)\n",
              result.stats.rc_steps,
              static_cast<unsigned long long>(
                  [&] {
                    std::uint64_t p = 0;
                    for (const auto& s : result.stats.steps) p += s.poisons;
                    return p;
                  }()));

  const auto after_top = top_k(result.closeness, 5);
  std::printf("\n%-10s %-14s %-14s\n", "rank", "before", "after outage+repair");
  for (std::size_t i = 0; i < 5; ++i) {
    std::printf("%-10zu %-14u %-14u\n", i + 1, top_k(before, 5)[i], after_top[i]);
  }
  std::printf("\ndead relay %u closeness after: %.6g (expected 0)\n", lost,
              result.closeness[lost]);
  std::printf("\n%s\n", result.stats.summary().c_str());
  if (const char* p = std::getenv("AACC_STATS_JSON")) {
    write_stats_json(p, result.stats);
  }
  return 0;
}
