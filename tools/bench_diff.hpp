// bench_diff — history-aware benchmark comparator (docs/EXPERIMENTS.md §M6,
// wired into CI by .github/workflows/ci.yml).
//
// Ingests two or more BENCH_*.json files (any JSON whose leaves are numbers
// or booleans), flattens every numeric leaf to a dotted path
// ("configs[2].drain_cpu_seconds"), and compares the newest file (the
// candidate) against the best of the older ones (the history). The gate is
// noise-aware, benchstat style: a metric only counts as a regression when
//   * its path matches the gate regex (timings, not counters),
//   * the relative delta vs the *best* historical sample exceeds
//     max(threshold, observed historical spread), and
//   * the absolute delta is above a tiny floor (sub-microsecond jitter on a
//     near-zero baseline is noise, not signal).
// Header-only so the unit test exercises the same code the CLI ships.
#pragma once

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <map>
#include <regex>
#include <string>
#include <vector>

namespace aacc::tools {

/// Flattens every numeric/boolean leaf of `text` (a JSON document) into
/// `out` keyed by dotted path; arrays index as "[i]". Strings and nulls are
/// skipped — benchmarks compare numbers. Returns false (and sets *err when
/// given) on malformed JSON.
inline bool flatten_json(const std::string& text,
                         std::map<std::string, double>& out,
                         std::string* err = nullptr) {
  struct Cursor {
    const char* p;
    const char* end;
    void ws() {
      while (p < end && std::isspace(static_cast<unsigned char>(*p))) ++p;
    }
    bool eat(char c) {
      ws();
      if (p < end && *p == c) {
        ++p;
        return true;
      }
      return false;
    }
    char peek() {
      ws();
      return p < end ? *p : '\0';
    }
  };
  struct Impl {
    std::map<std::string, double>& out;
    std::string* err;
    bool fail(const char* what) {
      if (err != nullptr) *err = what;
      return false;
    }
    static bool parse_string(Cursor& c, std::string& s) {
      if (!c.eat('"')) return false;
      s.clear();
      while (c.p < c.end && *c.p != '"') {
        if (*c.p == '\\' && c.p + 1 < c.end) {
          ++c.p;
          switch (*c.p) {
            case 'n': s += '\n'; break;
            case 't': s += '\t'; break;
            case '"': s += '"'; break;
            case '\\': s += '\\'; break;
            case '/': s += '/'; break;
            default: s += *c.p; break;  // \uXXXX etc.: keep raw, paths only
          }
        } else {
          s += *c.p;
        }
        ++c.p;
      }
      if (c.p >= c.end) return false;
      ++c.p;  // closing quote
      return true;
    }
    bool value(Cursor& c, const std::string& path) {
      const char ch = c.peek();
      if (ch == '{') {
        c.eat('{');
        if (c.peek() == '}') return c.eat('}');
        while (true) {
          std::string key;
          if (!parse_string(c, key)) return fail("expected object key");
          if (!c.eat(':')) return fail("expected ':'");
          if (!value(c, path.empty() ? key : path + "." + key)) return false;
          if (c.eat(',')) continue;
          if (c.eat('}')) return true;
          return fail("expected ',' or '}'");
        }
      }
      if (ch == '[') {
        c.eat('[');
        if (c.peek() == ']') return c.eat(']');
        std::size_t i = 0;
        while (true) {
          if (!value(c, path + "[" + std::to_string(i) + "]")) return false;
          ++i;
          if (c.eat(',')) continue;
          if (c.eat(']')) return true;
          return fail("expected ',' or ']'");
        }
      }
      if (ch == '"') {
        std::string s;
        return parse_string(c, s) || fail("bad string");
      }
      if (ch == 't') {
        if (c.end - c.p >= 4 && std::string(c.p, 4) == "true") {
          c.p += 4;
          out[path] = 1.0;
          return true;
        }
        return fail("bad literal");
      }
      if (ch == 'f') {
        if (c.end - c.p >= 5 && std::string(c.p, 5) == "false") {
          c.p += 5;
          out[path] = 0.0;
          return true;
        }
        return fail("bad literal");
      }
      if (ch == 'n') {
        if (c.end - c.p >= 4 && std::string(c.p, 4) == "null") {
          c.p += 4;
          return true;  // skipped: null is not a metric
        }
        return fail("bad literal");
      }
      char* after = nullptr;
      const double v = std::strtod(c.p, &after);
      if (after == c.p || after > c.end) return fail("expected a value");
      c.p = after;
      out[path] = v;
      return true;
    }
  };
  Cursor c{text.data(), text.data() + text.size()};
  Impl impl{out, err};
  if (!impl.value(c, "")) return false;
  c.ws();
  if (c.p != c.end) {
    if (err != nullptr) *err = "trailing content after JSON document";
    return false;
  }
  return true;
}

struct DiffOptions {
  /// Minimum relative regression (percent) before a gated metric fails.
  double threshold_pct = 10.0;
  /// Only metrics whose dotted path matches this ECMAScript regex (via
  /// std::regex_search) can fail the gate; everything else is report-only.
  /// Default matches the timing/makespan families across the BENCH_* files
  /// — deliberately NOT bare "modeled", which would also catch
  /// modeled_speedup, a higher-is-better metric the increase-only gate
  /// would misread.
  std::string gate_regex = "(seconds|makespan|wall|cpu)";
};

struct MetricDelta {
  std::string path;
  double baseline = 0.0;   ///< best (min) historical sample
  double candidate = 0.0;
  double delta_pct = 0.0;  ///< (candidate - baseline) / baseline * 100
  double noise_pct = 0.0;  ///< historical spread (max-min)/min * 100
  bool gated = false;      ///< path matches the gate regex
  bool regression = false;
};

struct DiffReport {
  std::vector<MetricDelta> rows;  ///< paths present in candidate AND history
  std::size_t regressions = 0;
  std::size_t improvements = 0;  ///< gated metrics faster than baseline
};

/// Compares `candidate` against `history` (1+ older runs). Baseline per
/// metric is the *minimum* over history (fastest observed — benchstat's
/// stance that the best run is closest to the machine's true capability);
/// noise is the historical spread. A gated metric regresses when its delta
/// beats max(threshold, noise) and the absolute change is non-trivial.
inline DiffReport diff_bench(
    const std::vector<std::map<std::string, double>>& history,
    const std::map<std::string, double>& candidate,
    const DiffOptions& opts = {}) {
  const std::regex gate(opts.gate_regex,
                        std::regex::ECMAScript | std::regex::icase);
  // Sub-microsecond absolute changes are timer granularity, not signal.
  constexpr double kAbsFloor = 1e-6;
  // Baselines at (or below) double noise level cannot express a meaningful
  // relative delta; report but never gate them.
  constexpr double kZeroBaseline = 1e-12;

  DiffReport rep;
  for (const auto& [path, cand] : candidate) {
    double lo = 0.0;
    double hi = 0.0;
    std::size_t samples = 0;
    for (const auto& run : history) {
      const auto it = run.find(path);
      if (it == run.end()) continue;
      if (samples == 0) {
        lo = hi = it->second;
      } else {
        lo = std::min(lo, it->second);
        hi = std::max(hi, it->second);
      }
      ++samples;
    }
    if (samples == 0) continue;  // new metric: nothing to compare against

    MetricDelta d;
    d.path = path;
    d.baseline = lo;
    d.candidate = cand;
    d.gated = std::regex_search(path, gate);
    if (lo > kZeroBaseline) {
      d.delta_pct = (cand - lo) / lo * 100.0;
      d.noise_pct = samples >= 2 ? (hi - lo) / lo * 100.0 : 0.0;
      const double bar = std::max(opts.threshold_pct, d.noise_pct);
      if (d.gated && d.delta_pct > bar && cand - lo > kAbsFloor) {
        d.regression = true;
        ++rep.regressions;
      } else if (d.gated && d.delta_pct < 0.0) {
        ++rep.improvements;
      }
    }
    rep.rows.push_back(std::move(d));
  }
  return rep;
}

}  // namespace aacc::tools
