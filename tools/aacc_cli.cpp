// aacc — command-line front end.
//
//   aacc generate <ba|er|ws|rmat|grid|planted> [options] --out FILE
//   aacc info <graph-file>
//   aacc partition <graph-file> --parts K [--kind multilevel|bfs|hash|block|rr]
//   aacc analyze <graph-file> [--ranks N] [--top K] [--measure M] [--exact]
//   aacc run <graph-file> [--ranks N] [--events FILE] [--progress] [--top-k K]
//   aacc serve <graph-file> [--ranks N] [--mutations FILE] [--batch N]
//   aacc tail <events.ndjson>
//
// Graph files: .txt/.edges (edge list), .graph (METIS), .net (Pajek),
// .gr (DIMACS). `analyze` runs the distributed anytime anywhere engine;
// `--exact` cross-checks against the sequential reference. `run` streams the
// live anytime-progress feed (docs/OBSERVABILITY.md §Progress events) and
// `tail` replays a recorded NDJSON feed through the same renderer. `serve`
// opens a live EngineSession: NDJSON mutations stream in from --mutations
// while point/topk/rankof queries typed on stdin are answered from the
// published snapshots (docs/API.md §"Serving sessions").
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>

#include "aacc/aacc.hpp"
#include "graph/louvain.hpp"
#include "graph/metrics.hpp"
#include "obs/causal.hpp"
#include "obs/metrics.hpp"

namespace {

using namespace aacc;

struct Args {
  std::vector<std::string> positional;
  std::map<std::string, std::string> flags;

  [[nodiscard]] std::string get(const std::string& key,
                                const std::string& fallback) const {
    const auto it = flags.find(key);
    return it == flags.end() ? fallback : it->second;
  }
  [[nodiscard]] long get_int(const std::string& key, long fallback) const {
    const auto it = flags.find(key);
    return it == flags.end() ? fallback : std::stol(it->second);
  }
  [[nodiscard]] bool has(const std::string& key) const {
    return flags.count(key) != 0;
  }
};

Args parse(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a.rfind("--", 0) == 0) {
      const std::string key = a.substr(2);
      if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        args.flags.insert_or_assign(key, std::string(argv[++i]));
      } else {
        args.flags.insert_or_assign(key, std::string("1"));
      }
    } else {
      args.positional.push_back(a);
    }
  }
  return args;
}

int usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  aacc generate <ba|er|ws|rmat|grid|planted> --n N [--m M] "
               "[--seed S] [--wmax W] --out FILE\n"
               "  aacc info <graph-file>\n"
               "  aacc partition <graph-file> --parts K [--kind KIND] [--seed S]\n"
               "  aacc analyze <graph-file> [--ranks N] [--top K] [--seed S]\n"
               "       [--measure closeness|harmonic|degree|betweenness|"
               "eigenvector] [--exact]\n"
               "       [--stats-json FILE] [--trace FILE] "
               "[--dv-budget BYTES|auto]\n"
               "       [--recovery-policy LADDER] [--checkpoint-every N]\n"
               "  aacc analyze --critical-path --trace FILE [--json FILE] "
               "[--top N]\n"
               "  aacc run <graph-file> [--ranks N] [--seed S] [--top-k K]\n"
               "       [--events FILE] [--progress] [--trace FILE]\n"
               "       [--dv-budget BYTES|auto]\n"
               "       [--recovery-policy LADDER] [--checkpoint-every N]\n"
               "  aacc serve <graph-file> [--ranks N] [--seed S] "
               "[--mutations FILE]\n"
               "       [--batch N] [--publish-every K] [--max-lag K] "
               "[--top-k K]\n"
               "       [--events FILE] [--recovery-policy LADDER] "
               "[--checkpoint-every N]\n"
               "  aacc tail <events.ndjson>\n"
               "\n"
               "serve reads NDJSON mutations ({\"op\":\"add_edge\",...};\n"
               "{\"op\":\"commit\"} flushes a batch, else every N lines) and\n"
               "answers queries from stdin: point V | topk K | rankof V |\n"
               "stats | quit. Every answer carries its publishing step, age\n"
               "in RC steps and the convergence estimators.\n"
               "\n"
               "analyze --critical-path reads a flow-stamped Chrome trace\n"
               "(written by analyze/run --trace, which enable flow stamping)\n"
               "and prints the per-step critical-path attribution — the top-N\n"
               "straggler chains with blocked-on rank/phase breakdowns\n"
               "(docs/OBSERVABILITY.md §Causal flows). --json also writes the\n"
               "full attribution table as JSON.\n"
               "\n"
               "LADDER is a comma list of recovery rungs tried in order when\n"
               "a rank dies (docs/FAULTS.md §Recovery policy ladder), each\n"
               "adopt|rollback|degrade with an optional :budget (uses per\n"
               "run, 0 = unlimited), e.g. adopt:2,rollback,degrade.\n"
               "\n"
               "--dv-budget caps per-rank dense DV memory: rows over the\n"
               "budget are demoted to a delta-compressed cold form (results\n"
               "are bit-identical; DESIGN.md §Tiered DV storage). BYTES\n"
               "accepts a plain number or k/m/g suffix; `auto` targets a\n"
               "quarter of physical memory split across ranks; 0 (default)\n"
               "keeps every row dense.\n");
  return 2;
}

/// Parses `--recovery-policy adopt:2,rollback,degrade` into config rungs.
/// Throws std::runtime_error on an unknown rung name or malformed budget;
/// EngineConfig::validate() later rejects empty or repeated ladders.
void apply_recovery_policy(const std::string& spec, EngineConfig& cfg) {
  cfg.recovery_policy.clear();
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    const std::size_t comma = std::min(spec.find(',', pos), spec.size());
    std::string rung = spec.substr(pos, comma - pos);
    pos = comma + 1;
    std::size_t budget = 0;
    if (const std::size_t colon = rung.find(':'); colon != std::string::npos) {
      budget = static_cast<std::size_t>(std::stoul(rung.substr(colon + 1)));
      rung.resize(colon);
    }
    RecoveryPolicy policy;
    if (rung == "adopt") policy = RecoveryPolicy::kAdopt;
    else if (rung == "rollback") policy = RecoveryPolicy::kRollback;
    else if (rung == "degrade" || rung == "degraded") policy = RecoveryPolicy::kDegrade;
    else throw std::runtime_error("unknown recovery rung '" + rung +
                                  "' (want adopt|rollback|degrade)");
    cfg.recovery_policy.push_back({policy, budget});
  }
}

/// Parses `--dv-budget 64m` / `--dv-budget auto` into per-rank bytes.
/// `auto` targets a quarter of physical memory split evenly across ranks
/// (floored at kMinDvBudgetBytes); plain numbers take an optional k/m/g
/// suffix. Throws std::runtime_error on malformed input; the value itself
/// is still vetted by EngineConfig::validate().
std::uint64_t parse_dv_budget(const std::string& spec, Rank ranks) {
  if (spec == "auto") {
    const long pages = sysconf(_SC_PHYS_PAGES);
    const long page = sysconf(_SC_PAGE_SIZE);
    if (pages <= 0 || page <= 0) {
      throw std::runtime_error("--dv-budget auto: cannot query physical memory");
    }
    const std::uint64_t phys =
        static_cast<std::uint64_t>(pages) * static_cast<std::uint64_t>(page);
    return std::max<std::uint64_t>(
        phys / 4 / static_cast<std::uint64_t>(std::max(ranks, Rank{1})),
        kMinDvBudgetBytes);
  }
  std::size_t used = 0;
  const std::uint64_t value = std::stoull(spec, &used);
  std::uint64_t scale = 1;
  if (used < spec.size()) {
    if (used + 1 != spec.size()) {
      throw std::runtime_error("--dv-budget: malformed byte count '" + spec +
                               "' (want BYTES[k|m|g] or auto)");
    }
    switch (spec[used]) {
      case 'k': case 'K': scale = 1ull << 10; break;
      case 'm': case 'M': scale = 1ull << 20; break;
      case 'g': case 'G': scale = 1ull << 30; break;
      default:
        throw std::runtime_error("--dv-budget: unknown suffix '" +
                                 spec.substr(used) + "' (want k, m or g)");
    }
  }
  return value * scale;
}

/// Shared by `run` and `analyze`: the fault-tolerance knobs.
void apply_recovery_flags(const Args& args, EngineConfig& cfg) {
  if (args.has("recovery-policy")) {
    apply_recovery_policy(args.get("recovery-policy", ""), cfg);
  }
  if (args.has("checkpoint-every")) {
    cfg.checkpoint_every =
        static_cast<std::size_t>(args.get_int("checkpoint-every", 0));
  }
}

/// One line per progress event, shared by `run --progress` and `tail` so a
/// live run and a replayed feed look identical.
void render_event(const obs::ProgressEvent& ev) {
  if (ev.phase == "ia") {
    std::printf("[ia     ] step %-4zu settled %llu/%llu  dirty %.1f%%\n",
                ev.step, static_cast<unsigned long long>(ev.settled),
                static_cast<unsigned long long>(ev.columns),
                100.0 * ev.dirty_fraction);
  } else if (ev.phase == "rc_step") {
    std::printf(
        "[rc %4zu] dirty %5.1f%%  relax %-9llu poison %-7llu repair %-7llu",
        ev.step, 100.0 * ev.dirty_fraction,
        static_cast<unsigned long long>(ev.relaxations),
        static_cast<unsigned long long>(ev.poisons),
        static_cast<unsigned long long>(ev.repairs));
    if (ev.exchange_wait_seconds > 0 || ev.inflight_depth > 0) {
      std::printf("  xwait %6.2fms  depth %llu",
                  1e3 * ev.exchange_wait_seconds,
                  static_cast<unsigned long long>(ev.inflight_depth));
    }
    if (ev.dv_cold_bytes > 0 || ev.dv_demotions > 0) {
      std::printf("  dv %.1f/%.1fMB hot/cold  promo %llu",
                  static_cast<double>(ev.dv_resident_bytes) / 1e6,
                  static_cast<double>(ev.dv_cold_bytes) / 1e6,
                  static_cast<unsigned long long>(ev.dv_promotions));
    }
    if (ev.has_serve) {
      std::printf("  serve %lluq age %llu",
                  static_cast<unsigned long long>(ev.serve_queries),
                  static_cast<unsigned long long>(ev.snapshot_age_steps));
    }
    if (ev.has_estimators) {
      std::printf("  top-k overlap %.3f  tau %+.3f", ev.topk_overlap,
                  ev.kendall_tau);
    }
    std::printf("\n");
  } else if (ev.phase == "recovery") {
    std::printf("[recover] %s at step %zu (recovery #%llu)\n",
                ev.detail.c_str(), ev.step,
                static_cast<unsigned long long>(ev.recoveries));
  } else if (ev.phase == "done") {
    std::printf("[done   ] %zu rc steps  %llu bytes  %llu retransmits  "
                "%llu recoveries\n",
                ev.step, static_cast<unsigned long long>(ev.bytes),
                static_cast<unsigned long long>(ev.retransmits),
                static_cast<unsigned long long>(ev.recoveries));
    if (ev.has_estimators) {
      std::printf("          final vs last step: top-k overlap %.3f  "
                  "tau %+.3f\n",
                  ev.topk_overlap, ev.kendall_tau);
    }
  } else {
    std::printf("[%s] step %zu\n", ev.phase.c_str(), ev.step);
  }
  std::fflush(stdout);
}

int cmd_run(const Args& args) {
  if (args.positional.size() < 2) return usage();
  const Graph g = load_graph(args.positional[1]);

  EngineConfig cfg;
  cfg.num_ranks = static_cast<Rank>(args.get_int("ranks", 8));
  cfg.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  cfg.progress.top_k = static_cast<std::size_t>(args.get_int("top-k", 32));
  if (args.has("dv-budget")) {
    cfg.dv_budget_bytes =
        parse_dv_budget(args.get("dv-budget", "0"), cfg.num_ranks);
  }
  apply_recovery_flags(args, cfg);
  if (args.has("events")) cfg.progress.path = args.get("events", "");
  if (args.has("trace")) {
    cfg.trace.enabled = true;
    cfg.trace.path = args.get("trace", "trace.json");
    cfg.trace.flow_stamping = true;  // traces feed analyze --critical-path
  }
  // Live rendering is the default purpose of `run`: render unless the user
  // asked only for a file feed.
  if (args.has("progress") || !args.has("events")) {
    cfg.progress.callback = render_event;
  }

  AnytimeEngine engine(g, cfg);
  const RunResult r = engine.run();
  std::printf("engine: %d ranks\n%s\n", cfg.num_ranks, r.stats.summary().c_str());
  if (!cfg.progress.path.empty()) {
    std::printf("events: %s\n", cfg.progress.path.c_str());
  }
  if (cfg.trace.enabled) {
    std::printf("trace: %s (%zu events)\n", cfg.trace.path.c_str(),
                r.trace.events.size());
  }
  const auto best = top_k(r.harmonic, cfg.progress.top_k);
  std::printf("%-8s %-10s %s\n", "rank", "vertex", "harmonic");
  for (std::size_t i = 0; i < best.size() && i < 10; ++i) {
    std::printf("%-8zu %-10u %.6g\n", i + 1, best[i], r.harmonic[best[i]]);
  }
  return 0;
}

/// One-line staleness contract suffix shared by every serve answer.
void print_meta(const serve::ResponseMeta& m) {
  std::printf("  [step %zu/%zu age %zu%s%s%s", m.step, m.engine_step,
              m.age_steps, m.stale ? " STALE" : "",
              m.degraded ? " degraded" : "", m.adopted ? " adopted" : "");
  if (m.has_estimators) {
    std::printf("  overlap %.3f tau %+.3f", m.topk_overlap, m.kendall_tau);
  }
  std::printf("]\n");
}

int cmd_serve(const Args& args) {
  if (args.positional.size() < 2) return usage();
  const Graph g = load_graph(args.positional[1]);

  EngineConfig cfg;
  cfg.num_ranks = static_cast<Rank>(args.get_int("ranks", 8));
  cfg.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  cfg.publish_every =
      static_cast<std::size_t>(args.get_int("publish-every", 1));
  cfg.max_snapshot_lag = static_cast<std::size_t>(args.get_int("max-lag", 0));
  cfg.progress.top_k = static_cast<std::size_t>(args.get_int("top-k", 32));
  if (args.has("dv-budget")) {
    cfg.dv_budget_bytes =
        parse_dv_budget(args.get("dv-budget", "0"), cfg.num_ranks);
  }
  apply_recovery_flags(args, cfg);
  if (args.has("events")) cfg.progress.path = args.get("events", "");

  serve::EngineSession session(g, cfg);
  const serve::QueryView view = session.view();
  std::printf("serving %u vertices on %d ranks — point V | topk K | "
              "rankof V | stats | quit\n",
              g.num_vertices(), cfg.num_ranks);

  // The feeder streams NDJSON mutations into the session while the REPL
  // below answers queries: the two never synchronize, which is the point.
  std::atomic<bool> feeding{args.has("mutations")};
  std::atomic<std::size_t> fed{0};
  std::atomic<std::size_t> rejected{0};
  std::thread feeder;
  if (args.has("mutations")) {
    const std::string path = args.get("mutations", "");
    const auto cap = static_cast<std::size_t>(args.get_int("batch", 64));
    feeder = std::thread([&session, &feeding, &fed, &rejected, path, cap] {
      std::ifstream in(path);
      if (!in) {
        std::fprintf(stderr, "error: cannot open %s\n", path.c_str());
        feeding.store(false);
        return;
      }
      std::vector<Event> batch;
      const auto flush = [&] {
        if (batch.empty()) return;
        const std::size_t size = batch.size();
        try {
          session.ingest(std::move(batch));
          fed.fetch_add(size);
        } catch (const std::exception& e) {
          // A contract violation (e.g. a misnumbered vertex add) or the
          // session ended under us (quit before the file drained).
          rejected.fetch_add(size);
          std::fprintf(stderr, "feed: batch rejected: %s\n", e.what());
        }
        batch = {};
      };
      std::string line;
      serve::StreamCommand cmd;
      while (std::getline(in, line)) {
        if (line.empty()) continue;
        if (!serve::parse_mutation_line(line, cmd)) {
          rejected.fetch_add(1);
          continue;
        }
        if (cmd.commit) {
          flush();
          continue;
        }
        batch.push_back(cmd.event);
        if (batch.size() >= cap) flush();
      }
      flush();
      feeding.store(false);
    });
  }

  std::string line;
  while (std::getline(std::cin, line)) {
    std::istringstream is(line);
    std::string op;
    is >> op;
    if (op.empty()) continue;
    if (op == "quit" || op == "exit") break;
    if (op == "point" || op == "rankof") {
      VertexId v = 0;
      if (!(is >> v)) {
        std::printf("usage: %s <vertex-id>\n", op.c_str());
        continue;
      }
      if (op == "point") {
        const auto r = view.point(v);
        if (r.found) {
          std::printf("v %-10u closeness %.6g  harmonic %.6g", v, r.closeness,
                      r.harmonic);
        } else {
          std::printf("v %-10u not in any snapshot", v);
        }
        print_meta(r.meta);
      } else {
        const auto r = view.rank_of(v);
        if (r.found) {
          std::printf("v %-10u rank %zu  closeness %.6g", v, r.rank,
                      r.closeness);
        } else {
          std::printf("v %-10u not in any snapshot", v);
        }
        print_meta(r.meta);
      }
    } else if (op == "topk") {
      std::size_t k = 10;
      is >> k;
      const auto r = view.top_k(k);
      for (std::size_t i = 0; i < r.entries.size(); ++i) {
        std::printf("%-4zu v %-10u %.6g\n", i + 1, r.entries[i].v,
                    r.entries[i].closeness);
      }
      std::printf("%zu of %zu requested", r.entries.size(), k);
      print_meta(r.meta);
    } else if (op == "stats") {
      std::printf("queries %llu  ingested %zu event(s), %zu rejected  "
                  "feed %s\n",
                  static_cast<unsigned long long>(session.queries_answered()),
                  fed.load(), rejected.load(),
                  feeding.load() ? "streaming" : "drained");
      const serve::SloSnapshot slo = session.slo();
      const auto line = [](const char* kind, const obs::Histogram& h) {
        if (h.count == 0) return;
        std::printf("slo: %-7s p50 %8.1fus  p95 %8.1fus  p99 %8.1fus  "
                    "(%llu queries)\n",
                    kind, obs::histogram_quantile(h, 0.50) / 1e3,
                    obs::histogram_quantile(h, 0.95) / 1e3,
                    obs::histogram_quantile(h, 0.99) / 1e3,
                    static_cast<unsigned long long>(h.count));
      };
      line("point", slo.point);
      line("topk", slo.top_k);
      line("rankof", slo.rank_of);
    } else {
      std::printf("commands: point V | topk K | rankof V | stats | quit\n");
    }
    std::fflush(stdout);
  }

  if (feeder.joinable()) feeder.join();
  const RunResult r = session.close();
  std::printf("%s\n", r.stats.summary().c_str());
  std::printf("serve: %llu queries  %llu publishes  %llu stale  "
              "%zu event(s) ingested\n",
              static_cast<unsigned long long>(
                  r.metrics.counter_value("serve/queries")),
              static_cast<unsigned long long>(
                  r.metrics.counter_value("serve/publishes")),
              static_cast<unsigned long long>(
                  r.metrics.counter_value("serve/stale_responses")),
              fed.load());
  const auto best = top_k(r.closeness, std::min<std::size_t>(10, cfg.progress.top_k));
  std::printf("%-8s %-10s %s\n", "rank", "vertex", "closeness");
  for (std::size_t i = 0; i < best.size(); ++i) {
    std::printf("%-8zu %-10u %.6g\n", i + 1, best[i], r.closeness[best[i]]);
  }
  return 0;
}

int cmd_tail(const Args& args) {
  if (args.positional.size() < 2) return usage();
  std::ifstream in(args.positional[1]);
  if (!in) {
    std::fprintf(stderr, "error: cannot open %s\n", args.positional[1].c_str());
    return 1;
  }
  std::string line;
  std::size_t rendered = 0;
  std::size_t malformed = 0;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    obs::ProgressEvent ev;
    if (!obs::parse_progress_event(line, ev)) {
      ++malformed;
      continue;
    }
    render_event(ev);
    ++rendered;
  }
  if (malformed > 0) {
    std::fprintf(stderr, "warning: skipped %zu malformed line(s)\n", malformed);
  }
  std::printf("%zu event(s)\n", rendered);
  return rendered > 0 ? 0 : 1;
}

int cmd_generate(const Args& args) {
  if (args.positional.size() < 2 || !args.has("out")) return usage();
  const std::string kind = args.positional[1];
  const auto n = static_cast<VertexId>(args.get_int("n", 1000));
  const auto m = static_cast<std::size_t>(args.get_int("m", 3 * n));
  Rng rng(static_cast<std::uint64_t>(args.get_int("seed", 1)));
  WeightRange wr{1, static_cast<Weight>(args.get_int("wmax", 1))};

  Graph g;
  if (kind == "ba") {
    g = barabasi_albert(n, static_cast<unsigned>(args.get_int("k", 2)), rng, wr);
  } else if (kind == "er") {
    g = erdos_renyi(n, m, rng, wr);
  } else if (kind == "ws") {
    g = watts_strogatz(n, static_cast<unsigned>(args.get_int("k", 3)),
                       std::stod(args.get("beta", "0.1")), rng, wr);
  } else if (kind == "rmat") {
    unsigned scale = 1;
    while ((VertexId{1} << scale) < n) ++scale;
    g = rmat(scale, m, 0.57, 0.19, 0.19, rng, wr);
  } else if (kind == "grid") {
    const auto side = static_cast<VertexId>(args.get_int("rows", 32));
    g = grid2d(side, static_cast<VertexId>(args.get_int("cols", side)), rng, wr);
  } else if (kind == "planted") {
    g = planted_partition(n, static_cast<unsigned>(args.get_int("k", 8)),
                          std::stod(args.get("pin", "0.05")),
                          std::stod(args.get("pout", "0.002")), rng, wr);
  } else {
    return usage();
  }
  save_graph(g, args.get("out", ""));
  std::printf("wrote %u vertices, %zu edges to %s\n", g.num_vertices(),
              g.num_edges(), args.get("out", "").c_str());
  return 0;
}

int cmd_info(const Args& args) {
  if (args.positional.size() < 2) return usage();
  const Graph g = load_graph(args.positional[1]);
  Rng rng(1);
  const auto comps = connected_components(g);
  std::printf("vertices:       %u (%u alive)\n", g.num_vertices(), g.num_alive());
  std::printf("edges:          %zu\n", g.num_edges());
  std::printf("components:     %u\n", comps.count);
  std::printf("clustering:     %.4f (sampled)\n",
              clustering_coefficient(g, rng, 512));
  std::printf("assortativity:  %+.4f\n", degree_assortativity(g));
  std::printf("diameter >=     %zu (double sweep)\n",
              diameter_lower_bound(g, rng));
  const double alpha = power_law_alpha_mle(g);
  if (alpha > 0) std::printf("power-law alpha %.2f (MLE)\n", alpha);
  const auto core = k_core(g);
  VertexId kmax = 0;
  for (const VertexId c : core) kmax = std::max(kmax, c);
  std::printf("max k-core:     %u\n", kmax);
  Rng lr(2);
  const auto lv = louvain(g, lr);
  std::printf("louvain:        %u communities, modularity %.3f\n",
              lv.num_communities, lv.modularity);
  return 0;
}

int cmd_partition(const Args& args) {
  if (args.positional.size() < 2) return usage();
  const Graph g = load_graph(args.positional[1]);
  const auto k = static_cast<Rank>(args.get_int("parts", 8));
  const std::string kind_name = args.get("kind", "multilevel");
  PartitionerKind kind = PartitionerKind::kMultilevel;
  if (kind_name == "bfs") kind = PartitionerKind::kBfs;
  else if (kind_name == "hash") kind = PartitionerKind::kHash;
  else if (kind_name == "block") kind = PartitionerKind::kBlock;
  else if (kind_name == "rr") kind = PartitionerKind::kRoundRobin;
  else if (kind_name != "multilevel") return usage();

  Rng rng(static_cast<std::uint64_t>(args.get_int("seed", 1)));
  Timer t;
  const Partition p = partition_graph(g, k, kind, rng);
  const auto m = evaluate_partition(g, p);
  std::printf("%s partition into %d parts in %.3fs\n", kind_name.c_str(), k,
              t.seconds());
  std::printf("cut edges:  %zu of %zu (%.1f%%)\n", m.cut_edges, g.num_edges(),
              100.0 * static_cast<double>(m.cut_edges) /
                  static_cast<double>(std::max<std::size_t>(g.num_edges(), 1)));
  std::printf("balance:    max %zu / min %zu (imbalance %.3f)\n", m.max_part,
              m.min_part, m.imbalance);
  return 0;
}

/// `analyze --critical-path`: offline causal analysis of a flow-stamped
/// Chrome trace (docs/OBSERVABILITY.md §Causal flows). Reads the trace
/// named by --trace, merges the per-rank tracks into the cross-rank causal
/// DAG and prints the top-N straggler chains with per-step blocked-on
/// attribution; --json additionally writes the full table as JSON.
int cmd_critical_path(const Args& args) {
  const std::string path = args.get("trace", "trace.json");
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "error: cannot open trace %s\n", path.c_str());
    return 1;
  }
  std::vector<obs::CausalEvent> events;
  if (!obs::load_chrome_trace(in, events)) {
    std::fprintf(stderr, "error: %s is not a Chrome trace JSON\n",
                 path.c_str());
    return 1;
  }
  const obs::CausalAnalysis a = obs::analyze_causal(events);
  obs::write_attribution_report(
      std::cout, a, static_cast<std::size_t>(args.get_int("top", 5)));
  if (args.has("json")) {
    const std::string out = args.get("json", "attribution.json");
    std::ofstream os(out, std::ios::binary | std::ios::trunc);
    if (!os) {
      std::fprintf(stderr, "error: could not write %s\n", out.c_str());
      return 1;
    }
    obs::write_attribution_json(os, a);
    os << '\n';
    std::printf("attribution json: %s\n", out.c_str());
  }
  return 0;
}

int cmd_analyze(const Args& args) {
  if (args.has("critical-path")) return cmd_critical_path(args);
  if (args.positional.size() < 2) return usage();
  const Graph g = load_graph(args.positional[1]);
  const auto ranks = static_cast<Rank>(args.get_int("ranks", 8));
  const auto top = static_cast<std::size_t>(args.get_int("top", 10));
  const std::string measure = args.get("measure", "closeness");

  std::vector<double> scores;
  Timer t;
  if (measure == "betweenness") {
    scores = betweenness_exact(g);
  } else if (measure == "eigenvector") {
    scores = eigenvector_centrality(g);
  } else if (measure == "degree") {
    scores = degree_centrality(g);
  } else {
    EngineConfig cfg;
    cfg.num_ranks = ranks;
    cfg.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
    if (args.has("dv-budget")) {
      cfg.dv_budget_bytes =
          parse_dv_budget(args.get("dv-budget", "0"), cfg.num_ranks);
    }
    apply_recovery_flags(args, cfg);
    if (args.has("trace")) {
      cfg.trace.enabled = true;
      cfg.trace.path = args.get("trace", "trace.json");
      cfg.trace.flow_stamping = true;  // feeds analyze --critical-path
    }
    AnytimeEngine engine(g, cfg);
    const RunResult r = engine.run();
    scores = measure == "harmonic" ? r.harmonic : r.closeness;
    std::printf("engine: %d ranks\n%s\n", ranks, r.stats.summary().c_str());
    if (args.has("stats-json")) {
      const std::string path = args.get("stats-json", "stats.json");
      if (!write_stats_json(path, r.stats)) {
        std::fprintf(stderr, "error: could not write %s\n", path.c_str());
        return 1;
      }
      std::printf("stats json: %s\n", path.c_str());
    }
    if (cfg.trace.enabled) {
      std::printf("trace: %s (%zu events)\n", cfg.trace.path.c_str(),
                  r.trace.events.size());
    }
    if (args.has("exact")) {
      const auto exact =
          measure == "harmonic" ? harmonic_exact(g) : closeness_exact(g);
      double max_diff = 0;
      for (VertexId v = 0; v < g.num_vertices(); ++v) {
        max_diff = std::max(max_diff, std::abs(exact[v] - scores[v]));
      }
      std::printf("cross-check vs sequential reference: max diff %.3g\n",
                  max_diff);
    }
  }
  std::printf("%s computed in %.3fs\n", measure.c_str(), t.seconds());
  std::printf("%-8s %-10s %s\n", "rank", "vertex", measure.c_str());
  const auto best = top_k(scores, top);
  for (std::size_t i = 0; i < best.size(); ++i) {
    std::printf("%-8zu %-10u %.6g\n", i + 1, best[i], scores[best[i]]);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const Args args = parse(argc, argv);
  const std::string cmd = args.positional.empty() ? "" : args.positional[0];
  try {
    if (cmd == "generate") return cmd_generate(args);
    if (cmd == "info") return cmd_info(args);
    if (cmd == "partition") return cmd_partition(args);
    if (cmd == "analyze") return cmd_analyze(args);
    if (cmd == "run") return cmd_run(args);
    if (cmd == "serve") return cmd_serve(args);
    if (cmd == "tail") return cmd_tail(args);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return usage();
}
