// bench_diff — CLI wrapper around tools/bench_diff.hpp.
//
//   bench_diff [--threshold PCT] [--gate REGEX] [--report-only] \
//              BENCH_old1.json [BENCH_old2.json ...] BENCH_new.json
//
// The LAST file is the candidate; every earlier file is history. Prints a
// per-metric table and exits 1 when any gated metric regressed (0 with
// --report-only, so CI can run a non-blocking full report first), 2 on
// usage or parse errors. See docs/EXPERIMENTS.md §M6.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "tools/bench_diff.hpp"

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: bench_diff [--threshold PCT] [--gate REGEX] "
               "[--report-only] OLD.json [OLD2.json ...] NEW.json\n");
  return 2;
}

bool read_file(const std::string& path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  out = ss.str();
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  aacc::tools::DiffOptions opts;
  bool report_only = false;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--threshold" && i + 1 < argc) {
      opts.threshold_pct = std::strtod(argv[++i], nullptr);
    } else if (a == "--gate" && i + 1 < argc) {
      opts.gate_regex = argv[++i];
    } else if (a == "--report-only") {
      report_only = true;
    } else if (a.rfind("--", 0) == 0) {
      return usage();
    } else {
      files.push_back(a);
    }
  }
  if (files.size() < 2) return usage();

  std::vector<std::map<std::string, double>> history;
  std::map<std::string, double> candidate;
  for (std::size_t i = 0; i < files.size(); ++i) {
    std::string text;
    if (!read_file(files[i], text)) {
      std::fprintf(stderr, "bench_diff: cannot read %s\n", files[i].c_str());
      return 2;
    }
    std::map<std::string, double> flat;
    std::string err;
    if (!aacc::tools::flatten_json(text, flat, &err)) {
      std::fprintf(stderr, "bench_diff: %s: %s\n", files[i].c_str(),
                   err.c_str());
      return 2;
    }
    if (i + 1 == files.size()) {
      candidate = std::move(flat);
    } else {
      history.push_back(std::move(flat));
    }
  }

  const auto rep = aacc::tools::diff_bench(history, candidate, opts);
  std::printf("bench_diff: %zu history run(s) vs %s  (threshold %.1f%%, "
              "gate /%s/)\n",
              history.size(), files.back().c_str(), opts.threshold_pct,
              opts.gate_regex.c_str());
  std::printf("%-52s %12s %12s %9s %8s  %s\n", "metric", "baseline",
              "candidate", "delta", "noise", "verdict");
  for (const auto& d : rep.rows) {
    const char* verdict = d.regression          ? "REGRESSION"
                          : !d.gated            ? "-"
                          : d.delta_pct < 0.0   ? "improved"
                                                : "ok";
    std::printf("%-52s %12.6g %12.6g %+8.2f%% %7.2f%%  %s\n", d.path.c_str(),
                d.baseline, d.candidate, d.delta_pct, d.noise_pct, verdict);
  }
  std::printf("%zu regression(s), %zu improvement(s), %zu metric(s) "
              "compared\n",
              rep.regressions, rep.improvements, rep.rows.size());
  if (rep.regressions > 0 && !report_only) return 1;
  return 0;
}
